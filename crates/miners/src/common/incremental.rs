//! Sliding-window incremental mining: the miners' end of the tid-delta
//! seam.
//!
//! [`IncrementalMiner`] owns a [`WindowedDatabase`] and keeps its mining
//! result *fresh* across window steps without re-mining from scratch. Each
//! [`IncrementalMiner::refresh`] drains the window's pending mutations into
//! one [`WindowStep`], forwards it to the support engine
//! ([`SupportEngine::apply_window_step`] — postings append/tombstone on the
//! columnar backends, a snapshot rebuild on the horizontal fall-back), and
//! then replays the level-wise candidate stream, re-judging **only** the
//! itemsets the step could actually move across the frequent/infrequent
//! border.
//!
//! # The border argument
//!
//! [`BorderTracker`] caches, for every itemset of the last refresh's
//! candidate stream, which side of the border it landed on:
//!
//! * **Frequent** entries keep the exact [`FrequentItemset`] record they
//!   reported. An entry is *touched* by a step iff some dirty slot changes
//!   the itemset's containment probability (`old.itemset_prob(X) !=
//!   new.itemset_prob(X)`). An untouched itemset's per-transaction
//!   probability vector is unchanged, so every statistic derived from it —
//!   and therefore the measure's verdict and record — is bit-identical to
//!   what a from-scratch evaluation would produce; the cached record is
//!   reused verbatim.
//! * **Infrequent** entries keep maintained *upper bounds* on the
//!   statistics that could promote them. A touched entry first grows its
//!   bounds by what the step could have added (`Σ max(new − old, 0)` mass,
//!   newly nonzero slots for the count); if the grown bound still sits
//!   below the measure's own sound cut
//!   ([`FrequentnessMeasure::min_esup_bound`] /
//!   [`FrequentnessMeasure::min_count_bound`]), the itemset provably
//!   cannot have crossed the border and is skipped without evaluation.
//!
//! Everything else — new candidates, touched frequent itemsets, touched
//! infrequent itemsets whose bounds could cross — goes through the engine
//! exactly as the batch [`MeasureEvaluator`](super::measure::MeasureEvaluator)
//! would evaluate it. By induction over levels, each refresh therefore
//! reproduces the records of batch-mining the window snapshot **bit for
//! bit** (the same candidate stream, the same statistics per candidate, the
//! same measure object), while the *work counters* differ by design: the
//! whole point is that [`MinerStats::candidates_evaluated`] shrinks to the
//! border traffic, with [`MinerStats::border_skipped`] and
//! [`MinerStats::border_rejudged`] accounting for the rest.
//!
//! One deliberate deviation from the batch evaluator: the incremental
//! [`StatRequest`] carries **no pushdown thresholds**. The engines'
//! threshold pushdown reports decision-equivalent (not value-equivalent)
//! partial sums for candidates it rules out, which would poison the
//! tracker's maintained upper bounds; exact moments keep every cached
//! bound sound. Kept records are bit-identical either way.

use super::apriori::generate_candidates;
use super::engine::{DiffsetEngine, HorizontalScan, StatRequest, SupportEngine, VerticalEngine};
use super::measure::{CandidateStats, FrequentnessMeasure, Screen};
use ufim_core::{
    EngineKind, FrequentItemset, FxHashMap, ItemId, Itemset, MinerStats, MiningResult, ShardPlan,
    StepProbe, Transaction, UncertainDatabase, WindowStep, WindowedDatabase,
};

/// Cached verdict of one tracked itemset (see [`BorderTracker`]).
#[derive(Clone, Debug)]
enum Tracked {
    /// Judged frequent at the last refresh that evaluated it; the exact
    /// record it reported, reused verbatim while untouched.
    Frequent(FrequentItemset),
    /// Judged (or bound-proven) infrequent, with maintained **upper
    /// bounds** on the statistics that could promote it across the border.
    Infrequent {
        /// Sound upper bound on the itemset's expected support.
        esup_ub: f64,
        /// Sound upper bound on its nonzero-transaction count (`Some` only
        /// when the active measure requests counts).
        count_ub: Option<u64>,
    },
}

/// One tracked itemset: its cached verdict plus the refresh stamp of the
/// last candidate stream that contained it.
#[derive(Clone, Debug)]
struct Entry {
    verdict: Tracked,
    stamp: u64,
}

/// How one candidate of an incremental level is dispatched.
enum Action {
    /// Untouched frequent entry: the cached record is exact — reuse it.
    ReuseFrequent(FrequentItemset),
    /// Provably still infrequent (untouched, or touched with bounds that
    /// cannot cross the border): skip without evaluation.
    ReuseInfrequent,
    /// Must go through the engine. `rejudge` marks invalidated tracked
    /// entries, as opposed to brand-new candidates.
    Evaluate {
        /// True when a tracked entry was invalidated by the step.
        rejudge: bool,
    },
}

/// Per-candidate disposition of one incremental level, in candidate order.
enum Slot {
    /// Reused from the tracker: `Some` = cached frequent record, `None` =
    /// provably still infrequent.
    Reuse(Option<FrequentItemset>),
    /// Index into the freshly evaluated candidate list.
    Fresh(u32),
}

/// The frequent/infrequent border of the last refresh, per measure.
///
/// One entry per itemset of the last candidate stream: frequent itemsets
/// carry their exact cached record, infrequent ones maintained upper
/// bounds (see the [module docs](self) for the reuse argument). Entries
/// that fall out of the candidate stream — descendants of an itemset that
/// went infrequent — are garbage-collected at the end of each refresh, so
/// the tracker's footprint is bounded by one candidate stream.
#[derive(Debug, Default)]
pub struct BorderTracker {
    entries: FxHashMap<Vec<ItemId>, Entry>,
    stamp: u64,
}

impl BorderTracker {
    /// Number of tracked itemsets (the last candidate stream's length).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before the first refresh evaluates anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Opens a refresh: entries the new candidate stream fails to touch
    /// keep the old stamp and are collected by [`BorderTracker::retire`].
    fn begin_refresh(&mut self) {
        self.stamp += 1;
    }

    /// Dispatches one candidate against the cached border and the step
    /// (read through its [`StepProbe`] — bit-identical to walking the
    /// dirty transactions, at a fraction of the cost).
    fn classify(
        &mut self,
        items: &[ItemId],
        probe: &StepProbe,
        min_esup: Option<f64>,
        min_count: Option<u64>,
    ) -> Action {
        let stamp = self.stamp;
        let Some(entry) = self.entries.get_mut(items) else {
            return Action::Evaluate { rejudge: false };
        };
        entry.stamp = stamp;

        let (touched, added_mass, added_count) = probe.growth(items);
        if !touched {
            // Identical containment probability in every dirty slot: the
            // itemset's vector — hence every derived statistic and the
            // measure's verdict — is unchanged.
            return match &entry.verdict {
                Tracked::Frequent(rec) => Action::ReuseFrequent(rec.clone()),
                Tracked::Infrequent { .. } => Action::ReuseInfrequent,
            };
        }
        match &mut entry.verdict {
            // A touched frequent itemset's record (its exact esup at the
            // least) changed, so it must be re-evaluated regardless of
            // whether it stays frequent.
            Tracked::Frequent(_) => Action::Evaluate { rejudge: true },
            Tracked::Infrequent { esup_ub, count_ub } => {
                *esup_ub += added_mass;
                if let Some(c) = count_ub.as_mut() {
                    *c += added_count;
                }
                let below_esup = min_esup.is_some_and(|b| *esup_ub < b);
                let below_count = matches!((min_count, *count_ub), (Some(b), Some(c)) if c < b);
                if below_esup || below_count {
                    Action::ReuseInfrequent
                } else {
                    Action::Evaluate { rejudge: true }
                }
            }
        }
    }

    /// Records the fresh verdict of an evaluated candidate.
    fn record(&mut self, items: &[ItemId], verdict: Tracked) {
        let stamp = self.stamp;
        self.entries
            .insert(items.to_vec(), Entry { verdict, stamp });
    }

    /// Closes a refresh: drops every entry the candidate stream no longer
    /// contains.
    fn retire(&mut self) {
        let stamp = self.stamp;
        self.entries.retain(|_, e| e.stamp == stamp);
    }
}

/// One incremental level: classify every candidate against the border,
/// evaluate the fresh ones exactly like the batch evaluator, and assemble
/// the level's survivors in candidate order.
fn evaluate_level<M: FrequentnessMeasure>(
    engine: &mut dyn SupportEngine,
    measure: &M,
    tracker: &mut BorderTracker,
    probe: &StepProbe,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<FrequentItemset> {
    let needs = measure.needs();
    // Exact moments only — no pushdown thresholds (see the module docs):
    // the cached infrequent bounds below must be sound upper bounds.
    let want = StatRequest {
        variance: needs.variance,
        count: needs.count,
        min_esup: None,
        min_count: None,
    };
    let (min_esup, min_count) = (measure.min_esup_bound(), measure.min_count_bound());

    let mut plan: Vec<Slot> = Vec::with_capacity(candidates.len());
    let mut fresh: Vec<Itemset> = Vec::new();
    for c in candidates {
        match tracker.classify(c.items(), probe, min_esup, min_count) {
            Action::ReuseFrequent(rec) => {
                stats.border_skipped += 1;
                plan.push(Slot::Reuse(Some(rec)));
            }
            Action::ReuseInfrequent => {
                stats.border_skipped += 1;
                plan.push(Slot::Reuse(None));
            }
            Action::Evaluate { rejudge } => {
                stats.border_rejudged += u64::from(rejudge);
                plan.push(Slot::Fresh(fresh.len() as u32));
                fresh.push(c.clone());
            }
        }
    }

    // The fresh subset runs through the measure exactly as the batch
    // evaluator would run the whole level (screen → prob-vectors → judge).
    // Reused prefixes may be absent from the engine's memo; every backend
    // falls back to a bit-identical from-scratch fold for cold prefixes.
    let mut fresh_records: Vec<Option<FrequentItemset>> = vec![None; fresh.len()];
    if !fresh.is_empty() {
        stats.candidates_evaluated += fresh.len() as u64;
        let sup = engine.evaluate(&fresh, want, stats);

        let mut survivors: Vec<u32> = Vec::with_capacity(fresh.len());
        for idx in 0..fresh.len() {
            let count = sup.count.as_ref().map_or(0, |c| c[idx]);
            match measure.screen(sup.esup[idx], count) {
                Screen::Keep => survivors.push(idx as u32),
                Screen::PruneCount => stats.candidates_pruned_count += 1,
                Screen::PruneBound => stats.candidates_pruned_chernoff += 1,
            }
        }

        let qvecs: Option<Vec<Vec<f64>>> = if needs.prob_vector && !survivors.is_empty() {
            let sets: Vec<Itemset> = survivors
                .iter()
                .map(|&i| fresh[i as usize].clone())
                .collect();
            Some(engine.prob_vectors(&sets, stats))
        } else {
            None
        };

        for (slot, &idx) in survivors.iter().enumerate() {
            let i = idx as usize;
            let c = CandidateStats {
                esup: sup.esup[i],
                variance: sup.variance.as_ref().map_or(0.0, |v| v[i]),
                count: sup.count.as_ref().map_or(0, |c| c[i]),
                probs: qvecs.as_ref().map(|q| q[slot].as_slice()),
            };
            if let Some(j) = measure.judge(&c, stats) {
                fresh_records[i] = Some(FrequentItemset {
                    itemset: fresh[i].clone(),
                    expected_support: j.expected_support,
                    variance: j.variance,
                    frequent_prob: j.frequent_prob,
                });
            }
        }

        for (i, set) in fresh.iter().enumerate() {
            let verdict = match &fresh_records[i] {
                Some(rec) => Tracked::Frequent(rec.clone()),
                // Exact statistics (no pushdown above), so these are sound
                // upper bounds to grow across future steps.
                None => Tracked::Infrequent {
                    esup_ub: sup.esup[i],
                    count_ub: sup.count.as_ref().map(|c| c[i]),
                },
            };
            tracker.record(set.items(), verdict);
        }
    }

    let mut out = Vec::new();
    for slot in plan {
        match slot {
            Slot::Reuse(Some(rec)) => out.push(rec),
            Slot::Reuse(None) => {}
            Slot::Fresh(i) => {
                if let Some(rec) = fresh_records[i as usize].take() {
                    out.push(rec);
                }
            }
        }
    }
    engine.finish_level(&out);
    out
}

/// Replays the level-wise candidate stream through the border tracker —
/// the incremental counterpart of [`run_apriori`](super::apriori::run_apriori).
fn refresh_levels<M: FrequentnessMeasure>(
    engine: &mut dyn SupportEngine,
    measure: &M,
    tracker: &mut BorderTracker,
    probe: &StepProbe,
    num_items: u32,
) -> MiningResult {
    let mut result = MiningResult::default();
    let mut candidates: Vec<Itemset> = (0..num_items).map(Itemset::singleton).collect();
    while !candidates.is_empty() {
        let frequent = evaluate_level(
            engine,
            measure,
            tracker,
            probe,
            &candidates,
            &mut result.stats,
        );
        if frequent.is_empty() {
            break;
        }
        candidates = generate_candidates(&frequent, &mut result.stats);
        result.itemsets.extend(frequent);
    }
    result
}

/// A delta-maintainable engine for `kind`, or `None` for backends that
/// borrow the database and must be rebuilt per refresh (horizontal).
fn owned_engine(
    kind: EngineKind,
    db: &UncertainDatabase,
    plan: ShardPlan,
) -> Option<Box<dyn SupportEngine>> {
    match kind {
        EngineKind::Horizontal => None,
        EngineKind::Vertical => Some(Box::new(VerticalEngine::with_plan(db, plan))),
        EngineKind::Diffset => Some(Box::new(DiffsetEngine::with_plan(db, plan))),
    }
}

/// A sliding-window miner that keeps its result fresh across window steps
/// by re-judging only the border traffic (see the [module docs](self)).
///
/// Results are **bit-identical** to batch-mining the window snapshot with
/// the same measure, engine and shard plan:
///
/// ```
/// use ufim_core::prelude::*;
/// use ufim_miners::common::{mine_level_wise_with_plan, ExpectedSupport, IncrementalMiner};
///
/// let window = WindowedDatabase::new(8, 4);
/// let mut miner =
///     IncrementalMiner::new(window, ExpectedSupport::new(1.0), EngineKind::Vertical);
/// for i in 0..6u32 {
///     miner.append(Transaction::new([(i % 4, 0.9), ((i + 1) % 4, 0.6)]).unwrap());
/// }
/// miner.refresh();
/// let batch = mine_level_wise_with_plan(
///     &miner.window().snapshot(),
///     ExpectedSupport::new(1.0),
///     EngineKind::Vertical,
///     miner.shard_plan(),
/// );
/// assert_eq!(miner.result().itemsets, batch.itemsets);
/// ```
pub struct IncrementalMiner<M: FrequentnessMeasure> {
    window: WindowedDatabase,
    measure: M,
    kind: EngineKind,
    plan: ShardPlan,
    /// Delta-maintainable backend, kept across refreshes; `None` for the
    /// horizontal fall-back, rebuilt over the snapshot inside `refresh`.
    engine: Option<Box<dyn SupportEngine>>,
    tracker: BorderTracker,
    result: MiningResult,
    /// True once the first refresh has run (before that, `result` is the
    /// empty placeholder, not a mined result).
    primed: bool,
}

impl<M: FrequentnessMeasure> IncrementalMiner<M> {
    /// Takes ownership of `window` and prepares incremental mining under
    /// the default shard plan for the window's (constant) snapshot size.
    pub fn new(window: WindowedDatabase, measure: M, kind: EngineKind) -> Self {
        let plan = ShardPlan::for_transactions(window.capacity());
        Self::with_plan(window, measure, kind, plan)
    }

    /// [`IncrementalMiner::new`] with an explicit shard plan. Mutations
    /// already pending in `window` are folded into the engine's baseline
    /// (the first refresh starts from the window's current contents).
    pub fn with_plan(
        mut window: WindowedDatabase,
        measure: M,
        kind: EngineKind,
        plan: ShardPlan,
    ) -> Self {
        // Drain pending mutations first: the engine is built from the
        // current snapshot, so replaying them on the first refresh would
        // double-apply.
        let _ = window.take_step();
        let engine = owned_engine(kind, &window.snapshot(), plan);
        IncrementalMiner {
            window,
            measure,
            kind,
            plan,
            engine,
            tracker: BorderTracker::default(),
            result: MiningResult::default(),
            primed: false,
        }
    }

    /// The sliding window (read access).
    pub fn window(&self) -> &WindowedDatabase {
        &self.window
    }

    /// The sliding window (mutations accumulate until the next refresh).
    pub fn window_mut(&mut self) -> &mut WindowedDatabase {
        &mut self.window
    }

    /// Appends a transaction ([`WindowedDatabase::append`]); the change
    /// takes effect at the next [`IncrementalMiner::refresh`].
    pub fn append(&mut self, t: Transaction) -> u32 {
        self.window.append(t)
    }

    /// Expires up to `n` oldest transactions
    /// ([`WindowedDatabase::expire_oldest`]).
    pub fn expire_oldest(&mut self, n: usize) -> usize {
        self.window.expire_oldest(n)
    }

    /// The shard plan both the incremental engine and the batch oracle
    /// must share for bit-identical comparison.
    pub fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    /// The support backend in use.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The border tracker (introspection: how many itemsets are tracked).
    pub fn tracker(&self) -> &BorderTracker {
        &self.tracker
    }

    /// The result of the last [`IncrementalMiner::refresh`] (empty before
    /// the first). `stats` are the counters of that refresh only.
    pub fn result(&self) -> &MiningResult {
        &self.result
    }

    /// Brings the result up to date with every window mutation since the
    /// last refresh and returns it.
    ///
    /// Records are bit-identical to batch-mining the current snapshot;
    /// `result.stats` counts this refresh's work only (an empty step after
    /// the first refresh short-circuits to the cached result with zeroed
    /// counters).
    pub fn refresh(&mut self) -> &MiningResult {
        let step = self.window.take_step();
        if self.primed && step.is_empty() {
            self.result.stats = MinerStats::default();
            return &self.result;
        }
        self.tracker.begin_refresh();
        let num_items = self.window.num_items();
        // One probe per step, shared by the engine's patch walk and every
        // border classification below: dense old/new probability rows plus
        // per-item changed-slot bitsets, so touch detection costs a few
        // multiplies per changed slot instead of transaction walks. The
        // unprimed first refresh provably never reads it — the tracker has
        // no entries to classify against and the engine holds no stamped
        // memo to patch — so the (large, whole-window) initial-fill step
        // gets a trivial probe instead of a dense-matrix build.
        let probe = if self.primed {
            StepProbe::new(&step, num_items)
        } else {
            StepProbe::new(&WindowStep::default(), num_items)
        };
        // Counters of the step application itself (memo_patched /
        // memo_rebuilt), merged into the refresh's stats below.
        let mut step_stats = MinerStats::default();
        if let Some(engine) = self.engine.as_mut() {
            if !engine.apply_window_step(&step, &probe, &mut step_stats) {
                // The backend declined delta maintenance: rebuild it over
                // the stepped snapshot (still cheaper than re-mining — the
                // tracker's reuse survives a rebuild).
                *engine = owned_engine(self.kind, &self.window.snapshot(), self.plan)
                    .expect("owned backends accept window steps");
            }
        }
        let mut result = match self.engine.as_mut() {
            Some(engine) => refresh_levels(
                engine.as_mut(),
                &self.measure,
                &mut self.tracker,
                &probe,
                num_items,
            ),
            None => {
                // Borrowing backend (horizontal): a per-refresh engine over
                // the snapshot — the honest re-scan fall-back. Border reuse
                // still applies; only the fresh subset pays the scans.
                let snapshot = self.window.snapshot();
                let mut engine = HorizontalScan::with_plan(&snapshot, self.plan);
                refresh_levels(
                    &mut engine,
                    &self.measure,
                    &mut self.tracker,
                    &probe,
                    num_items,
                )
            }
        };
        self.tracker.retire();
        result.stats.absorb(&step_stats);
        self.result = result;
        self.primed = true;
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::measure::{
        mine_level_wise_with_plan, ExactKernel, ExactMeasure, ExpectedSupport, NormalApprox,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ufim_core::MiningParams;

    fn tx(rng: &mut StdRng, num_items: u32, density: f64) -> Transaction {
        let units: Vec<(u32, f64)> = (0..num_items)
            .filter_map(|i| {
                if rng.gen_bool(density) {
                    Some((i, rng.gen_range(0.05..=1.0)))
                } else {
                    None
                }
            })
            .collect();
        Transaction::new(units).unwrap()
    }

    /// Drives `ops` scripted window mutations, refreshing after each batch
    /// and asserting the incremental records equal the batch oracle's, bit
    /// for bit and in the same order.
    fn assert_tracks_batch<M: FrequentnessMeasure + Copy>(
        measure: M,
        kind: EngineKind,
        plan: ShardPlan,
        seed: u64,
    ) -> MinerStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let window = WindowedDatabase::new(16, 6);
        let mut miner = IncrementalMiner::with_plan(window, measure, kind, plan);
        let mut last = MinerStats::default();
        for round in 0..12 {
            match round % 4 {
                0 | 1 => {
                    for _ in 0..3 {
                        miner.append(tx(&mut rng, 6, 0.6));
                    }
                }
                2 => {
                    miner.expire_oldest(2);
                    miner.append(tx(&mut rng, 6, 0.6));
                }
                _ => {
                    miner.expire_oldest(1);
                }
            }
            miner.refresh();
            let batch = mine_level_wise_with_plan(&miner.window().snapshot(), measure, kind, plan);
            assert_eq!(
                miner.result().itemsets,
                batch.itemsets,
                "{kind} diverged from the batch oracle at round {round}"
            );
            last = miner.result().stats.clone();
        }
        last
    }

    #[test]
    fn incremental_matches_batch_for_every_engine() {
        for kind in EngineKind::ALL {
            let stats = assert_tracks_batch(
                ExpectedSupport::with_variance(2.0),
                kind,
                ShardPlan::default(),
                7,
            );
            // Warm refreshes reuse most of the border.
            assert!(stats.border_skipped > 0, "{kind}: no border reuse");
        }
    }

    #[test]
    fn incremental_matches_batch_under_sharding() {
        // 4-tid shards over a 16-slot window: the delta chains and zone
        // maps engage, and the fragment merges must stay bit-identical.
        for kind in [EngineKind::Vertical, EngineKind::Diffset] {
            assert_tracks_batch(
                ExpectedSupport::new(1.5),
                kind,
                ShardPlan::with_width_chunks(1),
                11,
            );
        }
    }

    #[test]
    fn incremental_matches_batch_for_probabilistic_measures() {
        let normal = NormalApprox::new(3, 0.6);
        let params = MiningParams::new(0.2, 0.6).unwrap();
        let exact = ExactMeasure::new(ExactKernel::DynamicProgramming, true, 16, &params);
        for kind in EngineKind::ALL {
            assert_tracks_batch(normal, kind, ShardPlan::default(), 13);
            assert_tracks_batch(exact, kind, ShardPlan::default(), 17);
        }
    }

    #[test]
    fn bound_gate_skips_rejudging_deep_below_the_border() {
        // Item 5 trickles in at tiny probability: its singleton is touched
        // by every step, but the maintained esup bound keeps it provably
        // infrequent, so it is skipped rather than re-judged.
        let window = WindowedDatabase::new(32, 6);
        let mut miner =
            IncrementalMiner::new(window, ExpectedSupport::new(4.0), EngineKind::Vertical);
        for _ in 0..4 {
            miner.append(Transaction::new([(0, 0.9), (1, 0.8), (5, 0.01)]).unwrap());
            miner.refresh();
        }
        let stats = &miner.result().stats;
        assert!(
            stats.border_skipped > 0,
            "touched-but-bounded itemsets must be skipped"
        );
        // {5} was never re-judged after its first evaluation: the singleton
        // stays tracked as infrequent with a growing-but-tiny bound.
        let batch = mine_level_wise_with_plan(
            &miner.window().snapshot(),
            ExpectedSupport::new(4.0),
            EngineKind::Vertical,
            miner.shard_plan(),
        );
        assert_eq!(miner.result().itemsets, batch.itemsets);
    }

    #[test]
    fn empty_step_short_circuits_to_cached_result() {
        let window = WindowedDatabase::new(8, 4);
        let mut miner =
            IncrementalMiner::new(window, ExpectedSupport::new(1.0), EngineKind::Diffset);
        miner.append(Transaction::new([(0, 0.9), (1, 0.8)]).unwrap());
        miner.append(Transaction::new([(0, 0.7), (2, 0.6)]).unwrap());
        miner.refresh();
        let first = miner.result().itemsets.clone();
        assert!(miner.result().stats.candidates_evaluated > 0);
        miner.refresh();
        assert_eq!(miner.result().itemsets, first);
        assert_eq!(miner.result().stats, MinerStats::default());
    }

    #[test]
    fn pending_mutations_at_construction_are_not_double_applied() {
        let mut window = WindowedDatabase::new(4, 3);
        window.append(Transaction::new([(0, 0.9), (1, 0.9)]).unwrap());
        // `window` has a pending step; the miner must fold it into the
        // engine baseline instead of replaying it.
        let mut miner =
            IncrementalMiner::new(window, ExpectedSupport::new(0.5), EngineKind::Vertical);
        miner.refresh();
        let batch = mine_level_wise_with_plan(
            &miner.window().snapshot(),
            ExpectedSupport::new(0.5),
            EngineKind::Vertical,
            miner.shard_plan(),
        );
        assert_eq!(miner.result().itemsets, batch.itemsets);
    }

    #[test]
    fn full_window_expiry_empties_the_result() {
        let window = WindowedDatabase::new(8, 4);
        let mut miner =
            IncrementalMiner::new(window, ExpectedSupport::new(0.5), EngineKind::Vertical);
        for _ in 0..8 {
            miner.append(Transaction::new([(0, 0.9), (1, 0.8)]).unwrap());
        }
        miner.refresh();
        assert!(!miner.result().is_empty());
        miner.expire_oldest(8);
        miner.refresh();
        assert!(miner.result().is_empty());
        assert!(miner.window().is_empty());
        let batch = mine_level_wise_with_plan(
            &miner.window().snapshot(),
            ExpectedSupport::new(0.5),
            EngineKind::Vertical,
            miner.shard_plan(),
        );
        assert_eq!(miner.result().itemsets, batch.itemsets);
    }

    #[test]
    fn tracker_retires_entries_that_leave_the_stream() {
        let window = WindowedDatabase::new(8, 4);
        let mut miner =
            IncrementalMiner::new(window, ExpectedSupport::new(1.5), EngineKind::Vertical);
        for _ in 0..4 {
            miner.append(Transaction::new([(0, 0.9), (1, 0.9), (2, 0.9)]).unwrap());
        }
        miner.refresh();
        let deep = miner.tracker().len();
        // Kill the deep lattice: everything expires, only singletons remain
        // as candidates.
        miner.expire_oldest(4);
        miner.refresh();
        assert!(miner.tracker().len() < deep);
        assert_eq!(
            miner.tracker().len(),
            4,
            "only the singleton stream remains"
        );
    }
}
