//! The measure × traversal × engine **matrix**: every frequentness measure
//! crossed with every lattice traversal, one entry point.
//!
//! The paper studies eight named algorithms; under the
//! [`FrequentnessMeasure`] decomposition they are just the named cells of a
//! larger grid:
//!
//! | measure \ traversal | `level-wise` | `hyper` | `tree` |
//! |---|---|---|---|
//! | `esup` | UApriori | UH-Mine | UFP-growth |
//! | `poisson` | PDUApriori | *new* | *new* |
//! | `normal` | NDUApriori | NDUH-Mine | *new* |
//! | `exact-dp` | DP(B/NB) | *new* | — |
//! | `exact-dc` | DC(B/NB) | *new* | — |
//!
//! The two `—` cells are the matrix's principled hole: UFP-tree nodes
//! aggregate transactions, which destroys the per-transaction probability
//! vectors the exact kernels consume (see the [`crate::ufp_growth`] module
//! docs). Every other cell runs — including the five the seed codebase
//! could not build — and the level-wise column additionally runs on either
//! [`ufim_core::EngineKind`] support backend.
//!
//! [`MatrixMiner`] is the uniform entry point: a [`ProbabilisticMiner`]
//! whose measure is built from the run's [`MiningParams`]. The
//! [`MeasureKind::ExpectedSupport`] row reads `min_sup` as Definition 2's
//! `min_esup` (and ignores `pft`), so one interface sweeps the whole grid.

use crate::common::measure::{
    ExactKernel, ExactMeasure, ExpectedSupport, FrequentnessMeasure, NormalApprox, PoissonApprox,
};
use crate::{ufp_growth, uh_mine};
use ufim_core::prelude::*;

/// One cell of the measure × traversal matrix, runnable on any database
/// through the standard [`ProbabilisticMiner`] interface.
///
/// ```
/// use ufim_core::{MeasureKind, MiningParams, TraversalKind};
/// use ufim_miners::matrix::MatrixMiner;
/// use ufim_miners::prelude::*;
///
/// let db = ufim_core::examples::paper_table1();
/// // Exact DP judgment on the UH-Mine traversal — a cell no paper
/// // algorithm occupies.
/// let miner = MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::HyperStructure);
/// let r = miner.mine_probabilistic_raw(&db, 0.5, 0.7).unwrap();
/// assert!(!r.is_empty());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixMiner {
    /// The frequentness judgment.
    pub measure: MeasureKind,
    /// The lattice exploration strategy.
    pub traversal: TraversalKind,
    /// Chernoff + count screening for the exact measures (the paper's `B`
    /// variants; ignored by the others). Defaults to on.
    pub chernoff: bool,
}

impl MatrixMiner {
    /// The cell `(measure, traversal)`, with Chernoff screening on for
    /// exact measures (the `B` variants — the paper's recommended default).
    pub fn new(measure: MeasureKind, traversal: TraversalKind) -> Self {
        MatrixMiner {
            measure,
            traversal,
            chernoff: true,
        }
    }

    /// Disables the Chernoff/count screen (the `NB` variants).
    pub fn without_chernoff(mut self) -> Self {
        self.chernoff = false;
        self
    }

    /// The cell selected by a parameter bundle's
    /// [`measure`](MiningParams::measure) /
    /// [`traversal`](MiningParams::traversal) overrides; unset axes default
    /// to the classical UApriori cell (expected support, level-wise).
    pub fn from_params(params: &MiningParams) -> Self {
        MatrixMiner::new(
            params.measure.unwrap_or_default(),
            params.traversal.unwrap_or_default(),
        )
    }

    /// Whether a cell exists: every measure runs on every traversal except
    /// the exact measures on tree growth, whose node aggregation cannot
    /// serve per-transaction probability vectors.
    pub fn supported(measure: MeasureKind, traversal: TraversalKind) -> bool {
        !(measure.is_exact() && traversal == TraversalKind::TreeGrowth)
    }

    /// Every buildable cell, row-major (measure-major) order.
    pub fn all_supported() -> Vec<MatrixMiner> {
        let mut cells = Vec::new();
        for measure in MeasureKind::ALL {
            for traversal in TraversalKind::ALL {
                if Self::supported(measure, traversal) {
                    cells.push(MatrixMiner::new(measure, traversal));
                }
            }
        }
        cells
    }

    fn dispatch<M: FrequentnessMeasure>(
        &self,
        db: &UncertainDatabase,
        measure: M,
        engine: EngineKind,
    ) -> MiningResult {
        match self.traversal {
            TraversalKind::LevelWise => {
                crate::common::measure::mine_level_wise(db, measure, engine)
            }
            TraversalKind::HyperStructure => uh_mine::mine_hyper(db, &measure),
            TraversalKind::TreeGrowth => ufp_growth::mine_tree(db, &measure),
        }
    }
}

impl MinerInfo for MatrixMiner {
    fn name(&self) -> &'static str {
        // A static table so the name stays `&'static str` across all 15
        // cells (including the unsupported ones, which error at mine time).
        match (self.measure, self.traversal) {
            (MeasureKind::ExpectedSupport, TraversalKind::LevelWise) => "esup×level-wise",
            (MeasureKind::ExpectedSupport, TraversalKind::HyperStructure) => "esup×hyper",
            (MeasureKind::ExpectedSupport, TraversalKind::TreeGrowth) => "esup×tree",
            (MeasureKind::Poisson, TraversalKind::LevelWise) => "poisson×level-wise",
            (MeasureKind::Poisson, TraversalKind::HyperStructure) => "poisson×hyper",
            (MeasureKind::Poisson, TraversalKind::TreeGrowth) => "poisson×tree",
            (MeasureKind::Normal, TraversalKind::LevelWise) => "normal×level-wise",
            (MeasureKind::Normal, TraversalKind::HyperStructure) => "normal×hyper",
            (MeasureKind::Normal, TraversalKind::TreeGrowth) => "normal×tree",
            (MeasureKind::ExactDp, TraversalKind::LevelWise) => "exact-dp×level-wise",
            (MeasureKind::ExactDp, TraversalKind::HyperStructure) => "exact-dp×hyper",
            (MeasureKind::ExactDp, TraversalKind::TreeGrowth) => "exact-dp×tree",
            (MeasureKind::ExactDc, TraversalKind::LevelWise) => "exact-dc×level-wise",
            (MeasureKind::ExactDc, TraversalKind::HyperStructure) => "exact-dc×hyper",
            (MeasureKind::ExactDc, TraversalKind::TreeGrowth) => "exact-dc×tree",
        }
    }

    fn description(&self) -> &'static str {
        "one measure × traversal cell of the mining matrix"
    }
}

impl ProbabilisticMiner for MatrixMiner {
    /// Mines the cell. [`MeasureKind::ExpectedSupport`] reads
    /// `params.min_sup` as Definition 2's `min_esup` ratio and ignores
    /// `pft`; the level-wise traversal honors `params.engine`.
    ///
    /// # Errors
    /// [`CoreError::UnsupportedCombination`] for the exact × tree cells;
    /// otherwise propagates parameter validation.
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        if !Self::supported(self.measure, self.traversal) {
            return Err(CoreError::UnsupportedCombination {
                measure: self.measure.name(),
                traversal: self.traversal.name(),
            });
        }
        if db.is_empty() {
            return Ok(MiningResult::default());
        }
        let n = db.num_transactions();
        let engine = params.engine;
        Ok(match self.measure {
            MeasureKind::ExpectedSupport => self.dispatch(
                db,
                ExpectedSupport::new(params.min_sup.threshold_real(n)),
                engine,
            ),
            MeasureKind::Poisson => match PoissonApprox::from_params(n, &params)? {
                None => MiningResult::default(),
                Some(measure) => self.dispatch(db, measure, engine),
            },
            MeasureKind::Normal => self.dispatch(
                db,
                NormalApprox::new(params.msup(n), params.pft.get()),
                engine,
            ),
            MeasureKind::ExactDp => self.dispatch(
                db,
                ExactMeasure::new(ExactKernel::DynamicProgramming, self.chernoff, n, &params),
                engine,
            ),
            MeasureKind::ExactDc => self.dispatch(
                db,
                ExactMeasure::new(ExactKernel::DivideConquer, self.chernoff, n, &params),
                engine,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn the_matrix_has_thirteen_cells() {
        let cells = MatrixMiner::all_supported();
        assert_eq!(cells.len(), 13);
        assert!(!MatrixMiner::supported(
            MeasureKind::ExactDp,
            TraversalKind::TreeGrowth
        ));
        assert!(!MatrixMiner::supported(
            MeasureKind::ExactDc,
            TraversalKind::TreeGrowth
        ));
        // Names are unique across the grid.
        let mut names: Vec<&str> = cells.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn unsupported_cells_error_cleanly() {
        let db = paper_table1();
        let miner = MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::TreeGrowth);
        let err = miner.mine_probabilistic_raw(&db, 0.5, 0.7).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedCombination { .. }));
    }

    #[test]
    fn every_supported_cell_runs_on_table1() {
        let db = paper_table1();
        for cell in MatrixMiner::all_supported() {
            let r = cell.mine_probabilistic_raw(&db, 0.5, 0.7).unwrap();
            assert!(!r.is_empty(), "{} found nothing", cell.name());
        }
    }

    #[test]
    fn paper_cells_match_their_named_miners_exactly() {
        let db = paper_table1();
        let params = MiningParams::new(0.5, 0.7).unwrap();

        // Expected support row ↔ UApriori / UH-Mine / UFP-growth at the
        // matching min_esup.
        for (traversal, algo) in [
            (TraversalKind::LevelWise, Algorithm::UApriori),
            (TraversalKind::HyperStructure, Algorithm::UHMine),
            (TraversalKind::TreeGrowth, Algorithm::UFPGrowth),
        ] {
            let cell = MatrixMiner::new(MeasureKind::ExpectedSupport, traversal)
                .mine_probabilistic(&db, params)
                .unwrap();
            let named = algo
                .expected_support_miner()
                .unwrap()
                .mine_expected_ratio(&db, 0.5)
                .unwrap();
            assert_eq!(cell.sorted_itemsets(), named.sorted_itemsets());
            assert_eq!(cell.stats, named.stats, "{}", algo.name());
        }

        // Probabilistic cells ↔ their named miners (bit-identical records).
        for (cell, algo) in [
            (
                MatrixMiner::new(MeasureKind::Poisson, TraversalKind::LevelWise),
                Algorithm::PDUApriori,
            ),
            (
                MatrixMiner::new(MeasureKind::Normal, TraversalKind::LevelWise),
                Algorithm::NDUApriori,
            ),
            (
                MatrixMiner::new(MeasureKind::Normal, TraversalKind::HyperStructure),
                Algorithm::NDUHMine,
            ),
            (
                MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::LevelWise),
                Algorithm::DPB,
            ),
            (
                MatrixMiner::new(MeasureKind::ExactDc, TraversalKind::LevelWise),
                Algorithm::DCB,
            ),
            (
                MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::LevelWise).without_chernoff(),
                Algorithm::DPNB,
            ),
            (
                MatrixMiner::new(MeasureKind::ExactDc, TraversalKind::LevelWise).without_chernoff(),
                Algorithm::DCNB,
            ),
        ] {
            let got = cell.mine_probabilistic(&db, params).unwrap();
            let want = algo
                .probabilistic_miner()
                .unwrap()
                .mine_probabilistic(&db, params)
                .unwrap();
            assert_eq!(
                got.sorted_itemsets(),
                want.sorted_itemsets(),
                "{}",
                algo.name()
            );
            for fi in &got.itemsets {
                let w = want.get(&fi.itemset).unwrap();
                assert_eq!(fi.expected_support, w.expected_support, "{}", algo.name());
                assert_eq!(fi.frequent_prob, w.frequent_prob, "{}", algo.name());
                assert_eq!(fi.variance, w.variance, "{}", algo.name());
            }
            assert_eq!(got.stats, want.stats, "{}", algo.name());
        }
    }

    #[test]
    fn new_cells_agree_with_their_level_wise_reference() {
        // The previously unbuildable cells, judged against the same
        // measure's level-wise instantiation: same semantics ⇒ same sets.
        let db = paper_table1();
        for (min_sup, pft) in [(0.5, 0.7), (0.25, 0.5), (0.25, 0.9)] {
            for measure in MeasureKind::ALL {
                let reference = MatrixMiner::new(measure, TraversalKind::LevelWise)
                    .mine_probabilistic_raw(&db, min_sup, pft)
                    .unwrap();
                for traversal in [TraversalKind::HyperStructure, TraversalKind::TreeGrowth] {
                    if !MatrixMiner::supported(measure, traversal) {
                        continue;
                    }
                    let got = MatrixMiner::new(measure, traversal)
                        .mine_probabilistic_raw(&db, min_sup, pft)
                        .unwrap();
                    assert_eq!(
                        got.sorted_itemsets(),
                        reference.sorted_itemsets(),
                        "{measure}×{traversal} at ({min_sup}, {pft})"
                    );
                    for fi in &got.itemsets {
                        let w = reference.get(&fi.itemset).unwrap();
                        assert!(
                            (fi.expected_support - w.expected_support).abs() < 1e-9,
                            "{measure}×{traversal}: esup of {}",
                            fi.itemset
                        );
                        match (fi.frequent_prob, w.frequent_prob) {
                            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                            (None, None) => {}
                            other => panic!("{measure}×{traversal}: Pr presence {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn from_params_reads_the_overrides() {
        let params = MiningParams::new(0.5, 0.7)
            .unwrap()
            .with_measure(MeasureKind::ExactDc)
            .with_traversal(TraversalKind::HyperStructure);
        let m = MatrixMiner::from_params(&params);
        assert_eq!(m.measure, MeasureKind::ExactDc);
        assert_eq!(m.traversal, TraversalKind::HyperStructure);
        let defaults = MatrixMiner::from_params(&MiningParams::new(0.5, 0.7).unwrap());
        assert_eq!(defaults.measure, MeasureKind::ExpectedSupport);
        assert_eq!(defaults.traversal, TraversalKind::LevelWise);
        // And the selected cell actually mines.
        let db = paper_table1();
        let r = m.mine_probabilistic(&db, params).unwrap();
        assert!(!r.is_empty());
    }
}
