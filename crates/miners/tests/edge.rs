//! Edge-case and failure-injection tests for the miners: degenerate
//! databases, boundary thresholds, vocabulary gaps, and parameter abuse.

use ufim_core::prelude::*;
use ufim_miners::{Algorithm, BruteForce, DcMiner, UApriori};

fn all_expected() -> Vec<Box<dyn ExpectedSupportMiner>> {
    Algorithm::EXPECTED_SUPPORT
        .iter()
        .map(|a| a.expected_support_miner().unwrap())
        .collect()
}

fn all_probabilistic() -> Vec<Box<dyn ProbabilisticMiner>> {
    Algorithm::EXACT_PROBABILISTIC
        .iter()
        .chain(
            [
                Algorithm::PDUApriori,
                Algorithm::NDUApriori,
                Algorithm::NDUHMine,
            ]
            .iter(),
        )
        .map(|a| a.probabilistic_miner().unwrap())
        .collect()
}

#[test]
fn database_of_empty_transactions() {
    // Transactions exist (N > 0) but contain nothing: thresholds are
    // positive, results must be empty, and nothing may panic or divide by
    // zero.
    let db = UncertainDatabase::with_num_items(
        vec![Transaction::new::<[(u32, f64); 0]>([]).unwrap(); 10],
        4,
    );
    for m in all_expected() {
        assert!(
            m.mine_expected_ratio(&db, 0.5).unwrap().is_empty(),
            "{}",
            m.name()
        );
    }
    for m in all_probabilistic() {
        assert!(
            m.mine_probabilistic_raw(&db, 0.5, 0.9).unwrap().is_empty(),
            "{}",
            m.name()
        );
    }
}

#[test]
fn single_transaction_database() {
    let db =
        UncertainDatabase::from_transactions(vec![Transaction::new([(0, 0.9), (1, 0.4)]).unwrap()]);
    // min_esup = 0.5 over N = 1 ⇒ threshold 0.5: only item 0 qualifies.
    for m in all_expected() {
        let r = m.mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0)],
            "{}",
            m.name()
        );
    }
    // Probabilistic with msup = 1: Pr{sup(0) ≥ 1} = 0.9 > 0.8.
    //
    // PDUApriori is excused from the inclusion check: the Poisson
    // approximation demands esup ≥ λ* = ln 5 ≈ 1.61 here (N = 1 is the
    // approximation's worst case), a legitimate false negative the paper's
    // accuracy tables account for. It must still not hallucinate item 1.
    for m in all_probabilistic() {
        let r = m.mine_probabilistic_raw(&db, 1.0, 0.8).unwrap();
        if m.name() != "PDUApriori" {
            assert!(
                r.get(&Itemset::singleton(0)).is_some(),
                "{} missed the singleton",
                m.name()
            );
        }
        assert!(r.get(&Itemset::singleton(1)).is_none(), "{}", m.name());
    }
}

#[test]
fn certainty_reduces_every_miner_to_classical_mining() {
    // All probabilities 1.0: expected support == classical support and
    // every frequent probability is a 0/1 step. ALL ten miners must give
    // the classical answer.
    let db = UncertainDatabase::from_transactions(vec![
        Transaction::certain([0, 1, 2]),
        Transaction::certain([0, 1]),
        Transaction::certain([0, 2]),
        Transaction::certain([1, 2]),
    ]);
    let classical = BruteForce::new().mine_expected_ratio(&db, 0.5).unwrap();
    for m in all_expected() {
        let r = m.mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            classical.sorted_itemsets(),
            "{}",
            m.name()
        );
    }
    for m in all_probabilistic() {
        let r = m.mine_probabilistic_raw(&db, 0.5, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            classical.sorted_itemsets(),
            "{} under certainty",
            m.name()
        );
    }
}

#[test]
fn threshold_one_requires_presence_everywhere() {
    let db = UncertainDatabase::from_transactions(vec![
        Transaction::new([(0, 1.0), (1, 0.99)]).unwrap(),
        Transaction::new([(0, 1.0)]).unwrap(),
    ]);
    // min_esup = 1.0 ⇒ threshold = N: only items with probability 1 in
    // every transaction qualify.
    for m in all_expected() {
        let r = m.mine_expected_ratio(&db, 1.0).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0)],
            "{}",
            m.name()
        );
    }
}

#[test]
fn vocabulary_gaps_are_harmless() {
    // Item ids 0 and 900 used, vocabulary declared as 1000: dense
    // per-item arrays must not misbehave, and no phantom items may appear.
    let db = UncertainDatabase::with_num_items(
        vec![
            Transaction::new([(0, 0.9), (900, 0.9)]).unwrap(),
            Transaction::new([(0, 0.8), (900, 0.7)]).unwrap(),
        ],
        1000,
    );
    for m in all_expected() {
        let r = m.mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![
                Itemset::singleton(0),
                Itemset::from_items([0, 900]),
                Itemset::singleton(900),
            ],
            "{}",
            m.name()
        );
    }
}

#[test]
fn extreme_pft_values() {
    let db = ufim_core::examples::paper_table1();
    // pft near 1: only certainty-level itemsets survive. Pr{sup(C) >= 1}
    // = 0.998 > 0.99.
    let r = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, 0.25, 0.99)
        .unwrap();
    assert!(r.get(&Itemset::singleton(2)).is_some());
    // Everything reported must clear the bar.
    for fi in &r.itemsets {
        assert!(fi.frequent_prob.unwrap() > 0.99);
    }
    // Tiny pft: membership widens monotonically.
    let loose = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, 0.25, 0.01)
        .unwrap();
    assert!(loose.len() >= r.len());
    for itemset in r.sorted_itemsets() {
        assert!(
            loose.get(&itemset).is_some(),
            "{itemset} lost at looser pft"
        );
    }
}

#[test]
fn parameter_validation_at_the_boundary() {
    let db = ufim_core::examples::paper_table1();
    let m = UApriori::new();
    assert!(m.mine_expected_ratio(&db, 0.0).is_err());
    assert!(m.mine_expected_ratio(&db, -1.0).is_err());
    assert!(m.mine_expected_ratio(&db, 1.0 + 1e-9).is_err());
    assert!(m.mine_expected_ratio(&db, f64::NAN).is_err());
    let p = DcMiner::with_pruning();
    assert!(p.mine_probabilistic_raw(&db, 0.5, 0.0).is_err());
    assert!(p.mine_probabilistic_raw(&db, 0.5, f64::INFINITY).is_err());
    assert!(p.mine_probabilistic_raw(&db, f64::NAN, 0.9).is_err());
}

#[test]
fn probability_epsilon_units_do_not_break_counting() {
    // Probabilities at the representable floor: products underflow toward
    // zero gracefully, no NaN, no panic, monotone thresholds still hold.
    let tiny = f64::MIN_POSITIVE;
    let db = UncertainDatabase::from_transactions(vec![
        Transaction::new([(0, tiny), (1, 1.0)]).unwrap(),
        Transaction::new([(0, tiny), (1, 1.0)]).unwrap(),
    ]);
    for m in all_expected() {
        let r = m.mine_expected_ratio(&db, 0.9).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(1)],
            "{}",
            m.name()
        );
    }
    let r = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, 1.0, 0.5)
        .unwrap();
    assert_eq!(r.sorted_itemsets(), vec![Itemset::singleton(1)]);
}

#[test]
fn duplicate_probability_nodes_share_in_ufp_tree() {
    // Regression guard for the UFP-tree sharing rule: same item, identical
    // bit-pattern probabilities must share; the structure statistic is the
    // observable.
    use ufim_miners::UFPGrowth;
    let same = UncertainDatabase::from_transactions(vec![Transaction::new([(0, 0.5)]).unwrap(); 8]);
    let r = UFPGrowth::new().mine_expected_ratio(&same, 0.1).unwrap();
    assert_eq!(r.stats.peak_structure_nodes, 2); // root + one shared node

    let differ = UncertainDatabase::from_transactions(
        (0..8)
            .map(|i| Transaction::new([(0, 0.5 + i as f64 * 0.01)]).unwrap())
            .collect(),
    );
    let r = UFPGrowth::new().mine_expected_ratio(&differ, 0.1).unwrap();
    assert_eq!(r.stats.peak_structure_nodes, 9); // root + 8 distinct nodes
}
