//! Property-based tests for the mining substrate: the candidate trie, the
//! frequency order, result post-processing, and miner agreement (a leaner
//! in-crate version of the cross-crate suite in the workspace root).

use proptest::collection::vec;
use proptest::prelude::*;
use ufim_core::prelude::*;
use ufim_miners::common::trie::CandidateTrie;
use ufim_miners::common::FrequencyOrder;
use ufim_miners::{postprocess, BruteForce, UApriori, UFPGrowth, UHMine};

fn prob() -> impl Strategy<Value = f64> {
    (1u32..=100).prop_map(|k| k as f64 / 100.0)
}

fn small_db() -> impl Strategy<Value = UncertainDatabase> {
    vec(vec((0u32..6, prob()), 0..6), 1..20).prop_map(|raw| {
        let transactions = raw
            .into_iter()
            .map(|units| {
                let mut dedup = std::collections::BTreeMap::new();
                for (i, p) in units {
                    dedup.entry(i).or_insert(p);
                }
                Transaction::new(dedup.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 6)
    })
}

fn candidate_sets() -> impl Strategy<Value = Vec<Itemset>> {
    vec(vec(0u32..6, 1..4), 1..12).prop_map(|raw| {
        let mut sets: Vec<Itemset> = raw.into_iter().map(Itemset::from_items).collect();
        sets.sort();
        sets.dedup();
        sets
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_counts_match_reference(db in small_db(), candidates in candidate_sets()) {
        let trie = CandidateTrie::build(&candidates);
        let mut esup = vec![0.0f64; candidates.len()];
        for t in db.transactions() {
            trie.for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                esup[idx as usize] += q;
            });
        }
        for (c, got) in candidates.iter().zip(&esup) {
            let want = db.expected_support(c.items());
            prop_assert!((got - want).abs() < 1e-10, "{}: {} vs {}", c, got, want);
        }
    }

    #[test]
    fn frequency_order_is_total_and_sorted(db in small_db(), threshold in 0u32..30) {
        let t = threshold as f64 / 10.0;
        let order = FrequencyOrder::build(&db, t);
        let esups = db.item_expected_supports();
        // Every frequent item has a rank; ranks sort by decreasing esup.
        for item in 0..db.num_items() {
            let frequent = esups[item as usize] >= t;
            prop_assert_eq!(order.rank(item).is_some(), frequent);
        }
        for rank in 1..order.len() as u32 {
            prop_assert!(order.esup(rank - 1) >= order.esup(rank) - 1e-12);
        }
    }

    #[test]
    fn projection_is_sorted_filtered_and_complete(db in small_db()) {
        let order = FrequencyOrder::build(&db, 0.5);
        for t in db.transactions() {
            let proj = order.project(t.items(), t.probs());
            prop_assert!(proj.windows(2).all(|w| w[0].0 < w[1].0));
            let expected = t
                .units()
                .filter(|&(i, _)| order.rank(i).is_some())
                .count();
            prop_assert_eq!(proj.len(), expected);
        }
    }

    #[test]
    fn depth_first_miners_match_breadth_first(db in small_db(), te in 1u32..=9) {
        let ratio = te as f64 / 10.0;
        let a = UApriori::new().mine_expected_ratio(&db, ratio).unwrap();
        let b = UHMine::new().mine_expected_ratio(&db, ratio).unwrap();
        let c = UFPGrowth::new().mine_expected_ratio(&db, ratio).unwrap();
        prop_assert_eq!(a.sorted_itemsets(), b.sorted_itemsets());
        prop_assert_eq!(b.sorted_itemsets(), c.sorted_itemsets());
    }

    #[test]
    fn maximal_covers_and_closed_contains_maximal(db in small_db()) {
        let r = BruteForce::new().mine_expected_ratio(&db, 0.2).unwrap();
        let max = postprocess::maximal(&r);
        // Coverage: every frequent itemset sits under some maximal one.
        for fi in &r.itemsets {
            prop_assert!(
                max.iter().any(|m| fi.itemset.is_subset_of_sorted(m.itemset.items())),
                "{} uncovered", fi.itemset
            );
        }
        // Maximal ⊆ closed.
        let cls = postprocess::closed(&r, 1e-9);
        for m in &max {
            prop_assert!(
                cls.iter().any(|c| c.itemset == m.itemset),
                "maximal {} not closed", m.itemset
            );
        }
        // Closed preserves esup reconstruction: each frequent itemset's
        // esup equals the max esup among its closed supersets.
        for fi in &r.itemsets {
            let best = cls
                .iter()
                .filter(|c| fi.itemset.is_subset_of_sorted(c.itemset.items()))
                .map(|c| c.expected_support)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((best - fi.expected_support).abs() < 1e-9,
                "esup of {} not reconstructible: {} vs {}", fi.itemset, best, fi.expected_support);
        }
    }

    #[test]
    fn top_k_is_sorted_prefix(db in small_db(), k in 0usize..12) {
        let r = BruteForce::new().mine_expected_ratio(&db, 0.1).unwrap();
        let top = postprocess::top_k_by_expected_support(&r, k, 1);
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(w[0].expected_support >= w[1].expected_support - 1e-12);
        }
        // Nothing outside the top-k beats anything inside it.
        if let Some(last) = top.last() {
            for fi in &r.itemsets {
                if !top.iter().any(|t| t.itemset == fi.itemset) {
                    prop_assert!(fi.expected_support <= last.expected_support + 1e-12);
                }
            }
        }
    }
}
