//! Property-based tests for the statistics substrate: FFT identities,
//! convolution algebra, special-function identities.

use proptest::collection::vec;
use proptest::prelude::*;
use ufim_stats::complex::Complex64;
use ufim_stats::conv::{convolve, convolve_fft, convolve_naive, fold_tail};
use ufim_stats::fft::{dft_naive, fft, fft_in_place, ifft_in_place, Direction};
use ufim_stats::gamma::{gamma_p, gamma_q};
use ufim_stats::normal::{erf, erfc, normal_cdf};
use ufim_stats::poisson::{poisson_cdf, poisson_pmf, poisson_survival};

fn small_f64() -> impl Strategy<Value = f64> {
    (-1000i32..=1000).prop_map(|k| k as f64 / 100.0)
}

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fft_roundtrip_random(values in vec((small_f64(), small_f64()), 1..64)) {
        let input: Vec<Complex64> = values.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        let n = input.len().next_power_of_two();
        let mut buf = vec![Complex64::ZERO; n];
        buf[..input.len()].copy_from_slice(&input);
        let original = buf.clone();
        fft_in_place(&mut buf, Direction::Forward);
        ifft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_linearity(xs in vec(small_f64(), 1..32), ys_scale in small_f64()) {
        // FFT(a + c·b) = FFT(a) + c·FFT(b); use b = reversed a for variety.
        let a: Vec<Complex64> = xs.iter().map(|&v| Complex64::real(v)).collect();
        let b: Vec<Complex64> = xs.iter().rev().map(|&v| Complex64::real(v)).collect();
        let combo: Vec<Complex64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x + y.scale(ys_scale))
            .collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fc = fft(&combo);
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fc) {
            prop_assert!((*x + y.scale(ys_scale) - *z).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_matches_dft_on_pow2(values in vec(small_f64(), 1..6)) {
        // Pad to a power of two so both agree on the length.
        let mut input: Vec<Complex64> = values.iter().map(|&v| Complex64::real(v)).collect();
        let n = input.len().next_power_of_two();
        input.resize(n, Complex64::ZERO);
        let fast = fft(&input);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn convolution_commutative_and_sums_factor(a in vec(prob(), 1..40), b in vec(prob(), 1..40)) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // Σ (a*b) = Σa · Σb.
        let sa: f64 = a.iter().sum();
        let sb: f64 = b.iter().sum();
        let sab: f64 = ab.iter().sum();
        prop_assert!((sab - sa * sb).abs() < 1e-7 * (1.0 + sa * sb));
    }

    #[test]
    fn convolution_engines_agree(a in vec(prob(), 1..50), b in vec(prob(), 1..50)) {
        let naive = convolve_naive(&a, &b);
        let fftc = convolve_fft(&a, &b);
        prop_assert_eq!(naive.len(), fftc.len());
        for (x, y) in naive.iter().zip(&fftc) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn fold_tail_preserves_mass(pmf in vec(prob(), 1..30), cap in 0usize..35) {
        let total: f64 = pmf.iter().sum();
        let folded = fold_tail(pmf, cap);
        let total2: f64 = folded.iter().sum();
        prop_assert!((total - total2).abs() < 1e-12);
        prop_assert!(folded.len() <= cap + 1 || total2 == total);
    }

    #[test]
    fn erf_is_odd_and_bounded(x in small_f64()) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn normal_cdf_symmetry(x in small_f64()) {
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn gamma_p_q_partition(a in (1u32..200).prop_map(|k| k as f64 / 10.0),
                           x in (0u32..500).prop_map(|k| k as f64 / 10.0)) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-11);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn poisson_identities(k in 0usize..40, lambda in (0u32..400).prop_map(|v| v as f64 / 10.0)) {
        // CDF(k) + survival(k+1) = 1.
        let c = poisson_cdf(k, lambda);
        let s = poisson_survival(k + 1, lambda);
        prop_assert!((c + s - 1.0).abs() < 1e-10, "k={} λ={}", k, lambda);
        // CDF is the pmf partial sum.
        let direct: f64 = (0..=k).map(|i| poisson_pmf(i, lambda)).sum();
        prop_assert!((c - direct).abs() < 1e-9);
    }
}
