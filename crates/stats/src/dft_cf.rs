//! A third exact Poisson-Binomial method: the **DFT of the characteristic
//! function** (Hong 2013, "On computing the distribution function for the
//! Poisson binomial distribution").
//!
//! For `M` Bernoulli trials the PMF is recovered exactly from `M + 1`
//! samples of the characteristic function:
//!
//! `Pr{sup = k} = (1/(M+1)) Σ_{l=0}^{M} ω^{-lk} Π_t (1 − q_t + q_t ω^l)`,
//! with `ω = e^{2πi/(M+1)}`.
//!
//! Evaluating the product for all `l` costs `O(M²)` naively — the same as
//! dense DP — but the structure differs: the characteristic-function
//! samples are computed in *log space* (magnitude + phase), which keeps the
//! method numerically robust where long DP chains of tiny probabilities
//! underflow. In this workspace the method's main job is **triangulation**:
//! a third, independently-derived exact kernel that the property tests pit
//! against `pmf_exact` (dense DP) and `pmf_divide_conquer` (FFT
//! convolution), so an error in any one of the three shows up as a
//! disagreement.

use crate::complex::Complex64;
use crate::fft::{fft_in_place, next_pow2, Direction};

/// Exact support PMF via the characteristic function. `O(M²)` for the CF
/// samples plus one inverse transform.
///
/// Returns a vector of length `M + 1`; entries are clamped into `[0, 1]`
/// (round-off can produce ±1e-13 excursions).
pub fn pmf_dft_cf(probs: &[f64]) -> Vec<f64> {
    let m = probs.len();
    if m == 0 {
        return vec![1.0];
    }
    let n = m + 1;
    let omega = 2.0 * std::f64::consts::PI / n as f64;

    // xi[l] = Π_t (1 - q_t + q_t e^{i ω l}), accumulated in log-polar form:
    // log-magnitude sums and phase sums avoid underflow for large M.
    let mut xi = Vec::with_capacity(n);
    xi.push(Complex64::ONE); // l = 0: product of (1 - q + q) = 1
    for l in 1..n {
        let angle = omega * l as f64;
        let (sin_a, cos_a) = angle.sin_cos();
        let mut log_mag = 0.0f64;
        let mut phase = 0.0f64;
        for &q in probs {
            let re = 1.0 - q + q * cos_a;
            let im = q * sin_a;
            log_mag += 0.5 * (re * re + im * im).ln();
            phase += im.atan2(re);
        }
        let mag = log_mag.exp();
        xi.push(Complex64::new(mag * phase.cos(), mag * phase.sin()));
    }

    // Inverse DFT of the CF samples. Direct O(M²) evaluation keeps exact
    // length n (n is rarely a power of two); for large M go through a
    // zero-padded FFT-based Bluestein-free fallback: since n is small in
    // mining use (q-vectors are thresholded), the direct path is the
    // default and the FFT path handles the big inputs.
    if n <= 512 {
        let mut pmf = Vec::with_capacity(n);
        for k in 0..n {
            let mut acc = Complex64::ZERO;
            for (l, &x) in xi.iter().enumerate() {
                let ang = -omega * ((l * k % n) as f64);
                acc += x * Complex64::cis(ang);
            }
            pmf.push((acc.re / n as f64).clamp(0.0, 1.0));
        }
        pmf
    } else {
        // Evaluate the inverse transform as a convolution-free direct sum in
        // O(n log n) via chirp-z is overkill here; instead reuse the radix-2
        // FFT with the standard "sample the CF at a power-of-two grid"
        // trick: pad the *trial list* conceptually with zero-probability
        // trials, which leaves the distribution unchanged but makes the
        // grid size a power of two.
        let padded = next_pow2(n);
        let omega_p = 2.0 * std::f64::consts::PI / padded as f64;
        let mut samples = Vec::with_capacity(padded);
        for l in 0..padded {
            let angle = omega_p * l as f64;
            let (sin_a, cos_a) = angle.sin_cos();
            let mut log_mag = 0.0f64;
            let mut phase = 0.0f64;
            for &q in probs {
                let re = 1.0 - q + q * cos_a;
                let im = q * sin_a;
                log_mag += 0.5 * (re * re + im * im).ln();
                phase += im.atan2(re);
            }
            let mag = log_mag.exp();
            samples.push(Complex64::new(mag * phase.cos(), mag * phase.sin()));
        }
        // pmf[k] = (1/N) Σ_l ξ[l] e^{-2πi lk/N}: the e^{-iθ} kernel is this
        // module's *forward* transform; apply the 1/N normalization manually.
        fft_in_place(&mut samples, Direction::Forward);
        let scale = 1.0 / padded as f64;
        samples
            .into_iter()
            .take(n)
            .map(|z| (z.re * scale).clamp(0.0, 1.0))
            .collect()
    }
}

/// `Pr{sup ≥ msup}` via the DFT-CF PMF.
pub fn survival_dft_cf(probs: &[f64], msup: usize) -> f64 {
    let pmf = pmf_dft_cf(probs);
    crate::pb::survival_from_pmf(&pmf, msup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb::{pmf_exact, survival_dp};

    fn assert_pmf_close(a: &[f64], b: &[f64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < eps, "k={k}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(pmf_dft_cf(&[]), vec![1.0]);
        let pmf = pmf_dft_cf(&[0.3]);
        assert!((pmf[0] - 0.7).abs() < 1e-12);
        assert!((pmf[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn matches_dense_dp_small() {
        let probs = [0.1, 0.9, 0.5, 0.33, 0.66, 0.25];
        assert_pmf_close(&pmf_dft_cf(&probs), &pmf_exact(&probs), 1e-11);
    }

    #[test]
    fn matches_dense_dp_medium() {
        let probs: Vec<f64> = (0..200)
            .map(|i| ((i * 29 % 97) as f64 + 1.0) / 98.0)
            .collect();
        assert_pmf_close(&pmf_dft_cf(&probs), &pmf_exact(&probs), 1e-9);
    }

    #[test]
    fn matches_dense_dp_large_fft_path() {
        // > 512 trials exercises the padded-FFT branch.
        let probs: Vec<f64> = (0..700)
            .map(|i| ((i * 13 % 89) as f64 + 1.0) / 90.0)
            .collect();
        // Log-polar phase accumulation over 700 terms costs a few digits;
        // 1e-7 absolute is still far below any mining threshold.
        assert_pmf_close(&pmf_dft_cf(&probs), &pmf_exact(&probs), 1e-7);
    }

    #[test]
    fn survival_agrees_with_dp() {
        let probs: Vec<f64> = (0..90)
            .map(|i| ((i * 7 % 31) as f64 + 1.0) / 32.0)
            .collect();
        for msup in [0usize, 1, 10, 45, 90, 91] {
            let a = survival_dft_cf(&probs, msup);
            let b = survival_dp(&probs, msup);
            assert!((a - b).abs() < 1e-9, "msup={msup}: {a} vs {b}");
        }
    }

    #[test]
    fn robust_to_tiny_probabilities() {
        // Log-space accumulation: products of many tiny (1-q) terms.
        let probs = vec![0.999; 60];
        let pmf = pmf_dft_cf(&probs);
        let reference = pmf_exact(&probs);
        assert_pmf_close(&pmf, &reference, 1e-9);
        // Pr{sup = 60} = 0.999^60 — nontrivial mass at the top.
        assert!((pmf[60] - 0.999f64.powi(60)).abs() < 1e-9);
    }

    #[test]
    fn is_a_distribution() {
        let probs: Vec<f64> = (0..150).map(|i| ((i % 10) as f64 + 0.5) / 11.0).collect();
        let pmf = pmf_dft_cf(&probs);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
