//! Gamma-family special functions: `ln Γ`, and the regularized incomplete
//! gamma functions `P(a, x)` / `Q(a, x)`.
//!
//! These power the Poisson CDF used by PDUApriori (paper §3.3.1): the
//! survival function of a Poisson(λ) variable at integer `k` is exactly the
//! regularized *lower* incomplete gamma `P(k, λ)`.
//!
//! Implementation follows the classic pair of expansions (series for
//! `x < a + 1`, continued fraction otherwise), with `ln Γ` via the Lanczos
//! approximation (g = 7, n = 9 coefficients), giving ~1e-13 relative
//! accuracy over the parameter ranges the miners touch.

#![allow(clippy::excessive_precision)] // published coefficient sets, kept verbatim

/// Lanczos g=7, n=9 coefficients (Boost/Numerical-Recipes standard set).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// # Panics
/// Panics on `x ≤ 0` (the mining code never needs the reflection branch and
/// silently wrong values would be worse than a loud failure).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx); needed for 0 < x < 0.5.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Maximum iterations for the series / continued-fraction loops.
const MAX_ITER: usize = 10_000;
/// Convergence tolerance.
const EPS: f64 = 1e-15;
/// Number near the smallest representable, guarding CF divisions.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)` for
/// `a > 0, x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent (fast) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Lentz continued fraction for `Q(a, x)`, convergent for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (h * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "ln_gamma({}) = {lg}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - (std::f64::consts::PI).sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = √π/2
        assert!((ln_gamma(1.5) - ((std::f64::consts::PI).sqrt() / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling cross-check at x = 1000.
        let x: f64 = 1000.0;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn p_q_complement() {
        for &a in &[0.5, 1.0, 3.0, 10.0, 120.5] {
            for &x in &[0.0, 0.3, 1.0, 5.0, 50.0, 300.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}: p={p} q={q}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn p_is_exponential_cdf_for_a_one() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 7.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn p_monotone_in_x() {
        let a = 4.2;
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p >= prev - 1e-13);
            prev = p;
        }
    }

    #[test]
    fn erf_identity() {
        // P(1/2, x²) = erf(x) for x ≥ 0.
        for &x in &[0.2, 0.7, 1.3, 2.1] {
            let via_gamma = gamma_p(0.5, x * x);
            let via_erf = crate::normal::erf(x);
            assert!(
                (via_gamma - via_erf).abs() < 3e-7,
                "x={x}: {via_gamma} vs {via_erf}"
            );
        }
    }

    #[test]
    fn chi_square_reference() {
        // χ²_k CDF at x is P(k/2, x/2). χ²_2 at 5.991 ≈ 0.95.
        assert!((gamma_p(1.0, 5.991 / 2.0) - 0.95).abs() < 1e-3);
    }
}
