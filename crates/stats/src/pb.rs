//! The Poisson-Binomial distribution of an itemset's support.
//!
//! Given the per-transaction containment probabilities
//! `q = (q_1, …, q_M)` (zero entries removed), `sup(X) = Σ Bernoulli(q_t)`.
//! This module computes its distribution three ways, mirroring the paper's
//! Table 4:
//!
//! | method | complexity | used by |
//! |---|---|---|
//! | [`survival_dp`] (threshold-truncated DP) | `O(M · msup)` | DP algorithm (§3.2.1) |
//! | [`pmf_divide_conquer`] (+ FFT convolution) | `O(M log M)` | DC algorithm (§3.2.2) |
//! | [`pmf_exact`] (dense DP) | `O(M²)` | brute-force oracle, tests |
//!
//! plus the two-moment summary [`support_moments`] feeding the Normal
//! approximation.

use crate::conv::{convolve, convolve_saturating, fold_tail};

/// Mean and variance of the Poisson-Binomial variable:
/// `μ = Σ q_t`, `σ² = Σ q_t (1 − q_t)`.
pub fn support_moments(probs: &[f64]) -> (f64, f64) {
    let mut mean = 0.0;
    let mut var = 0.0;
    for &q in probs {
        mean += q;
        var += q * (1.0 - q);
    }
    (mean, var)
}

/// Exact support PMF by dense dynamic programming, `O(M²)`.
///
/// `out[k] = Pr{sup = k}` for `k = 0..=M`. The recurrence processes one
/// Bernoulli at a time: `d'[k] = d[k]·(1−q) + d[k−1]·q`.
pub fn pmf_exact(probs: &[f64]) -> Vec<f64> {
    let mut d = Vec::with_capacity(probs.len() + 1);
    d.push(1.0);
    for (t, &q) in probs.iter().enumerate() {
        d.push(0.0);
        // Backwards so d[k-1] is still the previous round's value.
        for k in (1..=t + 1).rev() {
            d[k] = d[k] * (1.0 - q) + d[k - 1] * q;
        }
        d[0] *= 1.0 - q;
    }
    d
}

/// `Pr{sup ≥ msup}` by threshold-truncated dynamic programming,
/// `O(M · msup)` time, `O(msup)` space — the kernel of the paper's DP
/// algorithm.
///
/// The state vector keeps `Pr{sup = k}` for `k < msup` and a saturating
/// bucket `Pr{sup ≥ msup}` at index `msup`; mass that crosses the threshold
/// never needs to be resolved further.
///
/// (The recurrence as printed in the paper has a typo — its first term reads
/// `Pr≥i,j`; the correct term, implemented here, is `Pr≥i-1,j-1`.)
pub fn survival_dp(probs: &[f64], msup: usize) -> f64 {
    if msup == 0 {
        return 1.0;
    }
    if probs.len() < msup {
        // Fewer Bernoulli trials than the threshold: impossible.
        return 0.0;
    }
    let cap = msup;
    let mut d = vec![0.0f64; cap + 1];
    d[0] = 1.0;
    for &q in probs {
        // Saturating bucket first: mass entering from d[cap-1] stays forever.
        d[cap] += q * d[cap - 1];
        for k in (1..cap).rev() {
            d[k] = d[k] * (1.0 - q) + d[k - 1] * q;
        }
        d[0] *= 1.0 - q;
    }
    d[cap].clamp(0.0, 1.0)
}

/// Support PMF by divide-and-conquer with size-dispatched (naive/FFT)
/// convolution — the kernel of the paper's DC algorithm.
///
/// With `cap = Some(c)` the result is truncated to length `c + 1` and index
/// `c` holds `Pr{sup ≥ c}` (saturation composes across the recursion, see
/// [`crate::conv::convolve_saturating`]); with `cap = None` the full PMF of
/// length `M + 1` is returned.
pub fn pmf_divide_conquer(probs: &[f64], cap: Option<usize>) -> Vec<f64> {
    /// Below this many Bernoullis, dense DP beats recursion + convolution.
    const LEAF: usize = 32;

    fn rec(probs: &[f64], cap: Option<usize>) -> Vec<f64> {
        if probs.len() <= LEAF {
            let pmf = pmf_exact(probs);
            return match cap {
                Some(c) => fold_tail(pmf, c),
                None => pmf,
            };
        }
        let mid = probs.len() / 2;
        let left = rec(&probs[..mid], cap);
        let right = rec(&probs[mid..], cap);
        match cap {
            Some(c) => convolve_saturating(&left, &right, c),
            None => convolve(&left, &right),
        }
    }

    if probs.is_empty() {
        return vec![1.0];
    }
    let mut pmf = rec(probs, cap);
    // FFT round-off can leave the total a hair off 1; renormalize the
    // distribution (the error is ~1e-12, far below mining thresholds, but
    // normalized PMFs keep invariants exact for downstream assertions).
    let total: f64 = pmf.iter().sum();
    if total > 0.0 && (total - 1.0).abs() < 1e-6 {
        for x in pmf.iter_mut() {
            *x /= total;
        }
    }
    pmf
}

/// `Pr{sup ≥ msup}` from a PMF produced by [`pmf_exact`] or
/// [`pmf_divide_conquer`]. Correctly handles PMFs saturated at any
/// `cap ≥ msup`.
pub fn survival_from_pmf(pmf: &[f64], msup: usize) -> f64 {
    if msup >= pmf.len() {
        // A PMF saturated at cap == msup has length msup+1, so this branch
        // only triggers when the support genuinely cannot reach msup.
        return 0.0;
    }
    pmf[msup..].iter().sum::<f64>().clamp(0.0, 1.0)
}

/// A computed support distribution bundling the PMF with its provenance,
/// convenient for the oracle and the DC miner.
#[derive(Clone, Debug)]
pub struct SupportDistribution {
    pmf: Vec<f64>,
    /// `Some(c)` when index `c` is a "`≥ c`" bucket.
    saturated_at: Option<usize>,
}

impl SupportDistribution {
    /// Exact distribution via dense DP.
    pub fn exact(probs: &[f64]) -> Self {
        SupportDistribution {
            pmf: pmf_exact(probs),
            saturated_at: None,
        }
    }

    /// Distribution via divide-and-conquer, optionally saturated.
    pub fn divide_conquer(probs: &[f64], cap: Option<usize>) -> Self {
        SupportDistribution {
            pmf: pmf_divide_conquer(probs, cap),
            saturated_at: cap.filter(|&c| c < probs.len()),
        }
    }

    /// The PMF values (`index c` is `Pr{sup ≥ c}` when saturated at `c`).
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Saturation point, if any.
    pub fn saturated_at(&self) -> Option<usize> {
        self.saturated_at
    }

    /// `Pr{sup ≥ msup}`.
    ///
    /// # Panics
    /// Panics if the distribution is saturated below `msup` (the tail beyond
    /// the saturation point is not resolvable).
    pub fn survival(&self, msup: usize) -> f64 {
        if let Some(c) = self.saturated_at {
            assert!(
                msup <= c,
                "distribution saturated at {c} cannot answer survival at {msup}"
            );
        }
        survival_from_pmf(&self.pmf, msup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn moments_basic() {
        let (m, v) = support_moments(&[0.5, 0.5]);
        assert!((m - 1.0).abs() < EPS);
        assert!((v - 0.5).abs() < EPS);
        let (m, v) = support_moments(&[]);
        assert_eq!((m, v), (0.0, 0.0));
        // Certain events contribute no variance.
        let (m, v) = support_moments(&[1.0, 1.0, 1.0]);
        assert!((m - 3.0).abs() < EPS && v.abs() < EPS);
    }

    #[test]
    fn pmf_exact_two_bernoullis() {
        let pmf = pmf_exact(&[0.3, 0.6]);
        assert!((pmf[0] - 0.7 * 0.4).abs() < EPS);
        assert!((pmf[1] - (0.3 * 0.4 + 0.7 * 0.6)).abs() < EPS);
        assert!((pmf[2] - 0.18).abs() < EPS);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < EPS);
    }

    #[test]
    fn pmf_exact_empty() {
        assert_eq!(pmf_exact(&[]), vec![1.0]);
    }

    #[test]
    fn paper_table2_semantics() {
        // Any PMF equal to the paper's Table 2 yields Pr{sup >= 2} = 0.72
        // (Example 2's headline computation).
        let pmf = [0.1, 0.18, 0.4, 0.32];
        assert!((survival_from_pmf(&pmf, 2) - 0.72).abs() < EPS);
    }

    #[test]
    fn survival_dp_matches_exact_pmf() {
        let probs = [0.9, 0.1, 0.5, 0.75, 0.33, 0.6];
        let pmf = pmf_exact(&probs);
        for msup in 0..=probs.len() + 1 {
            let dp = survival_dp(&probs, msup);
            let reference = survival_from_pmf(&pmf, msup);
            assert!(
                (dp - reference).abs() < EPS,
                "msup={msup}: dp={dp} ref={reference}"
            );
        }
    }

    #[test]
    fn survival_dp_edge_cases() {
        assert_eq!(survival_dp(&[], 0), 1.0);
        assert_eq!(survival_dp(&[], 1), 0.0);
        assert_eq!(survival_dp(&[0.4], 2), 0.0); // more than trials
        assert!((survival_dp(&[0.4], 1) - 0.4).abs() < EPS);
        // All-certain trials: survival is a step function.
        assert!((survival_dp(&[1.0; 5], 5) - 1.0).abs() < EPS);
        assert_eq!(survival_dp(&[1.0; 5], 6), 0.0);
    }

    #[test]
    fn divide_conquer_matches_exact_small() {
        let probs: Vec<f64> = (1..=10).map(|i| i as f64 / 11.0).collect();
        let dc = pmf_divide_conquer(&probs, None);
        let exact = pmf_exact(&probs);
        assert_eq!(dc.len(), exact.len());
        for (a, b) in dc.iter().zip(&exact) {
            assert!((a - b).abs() < EPS);
        }
    }

    #[test]
    fn divide_conquer_matches_exact_large() {
        // Big enough to force recursion and the FFT convolution path.
        let probs: Vec<f64> = (0..700)
            .map(|i| ((i * 37 % 100) as f64 + 1.0) / 101.0)
            .collect();
        let dc = pmf_divide_conquer(&probs, None);
        let exact = pmf_exact(&probs);
        for (k, (a, b)) in dc.iter().zip(&exact).enumerate() {
            assert!((a - b).abs() < 1e-9, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn divide_conquer_saturated_matches_survival() {
        let probs: Vec<f64> = (0..300)
            .map(|i| ((i * 13 % 37) as f64 + 1.0) / 38.0)
            .collect();
        for &msup in &[1usize, 5, 50, 150] {
            let capped = pmf_divide_conquer(&probs, Some(msup));
            assert_eq!(capped.len(), msup + 1);
            let want = survival_dp(&probs, msup);
            assert!(
                (capped[msup] - want).abs() < 1e-9,
                "msup={msup}: {} vs {want}",
                capped[msup]
            );
        }
    }

    #[test]
    fn divide_conquer_empty_input() {
        assert_eq!(pmf_divide_conquer(&[], None), vec![1.0]);
        assert_eq!(pmf_divide_conquer(&[], Some(3)), vec![1.0]);
    }

    #[test]
    fn survival_from_pmf_bounds() {
        let pmf = [0.25, 0.5, 0.25];
        assert!((survival_from_pmf(&pmf, 0) - 1.0).abs() < EPS);
        assert!((survival_from_pmf(&pmf, 1) - 0.75).abs() < EPS);
        assert!((survival_from_pmf(&pmf, 2) - 0.25).abs() < EPS);
        assert_eq!(survival_from_pmf(&pmf, 3), 0.0);
        assert_eq!(survival_from_pmf(&pmf, 99), 0.0);
    }

    #[test]
    fn distribution_wrapper_exact() {
        let probs = [0.2, 0.8, 0.5];
        let d = SupportDistribution::exact(&probs);
        assert_eq!(d.pmf().len(), 4);
        assert_eq!(d.saturated_at(), None);
        assert!((d.survival(0) - 1.0).abs() < EPS);
        assert!((d.survival(1) - survival_dp(&probs, 1)).abs() < EPS);
    }

    #[test]
    fn distribution_wrapper_saturated() {
        let probs: Vec<f64> = vec![0.5; 100];
        let d = SupportDistribution::divide_conquer(&probs, Some(10));
        assert_eq!(d.saturated_at(), Some(10));
        assert!((d.survival(10) - survival_dp(&probs, 10)).abs() < 1e-9);
        assert!((d.survival(3) - survival_dp(&probs, 3)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "saturated at")]
    fn distribution_wrapper_rejects_beyond_cap() {
        let d = SupportDistribution::divide_conquer(&vec![0.5; 100], Some(10));
        d.survival(11);
    }

    #[test]
    fn binomial_special_case() {
        // 20 iid Bernoulli(0.5): Pr{sup >= 10} computable from symmetry:
        // = 0.5 + C(20,10)/2^21.
        let probs = vec![0.5; 20];
        let want = 0.5 + 184_756.0 / 2f64.powi(21);
        assert!((survival_dp(&probs, 10) - want).abs() < 1e-12);
        let d = SupportDistribution::divide_conquer(&probs, None);
        assert!((d.survival(10) - want).abs() < 1e-12);
    }
}
