//! # ufim-stats
//!
//! Statistical substrate for mining frequent itemsets over uncertain
//! databases (Tong et al., VLDB 2012).
//!
//! The support `sup(X)` of an itemset over an uncertain database is a
//! **Poisson-Binomial** random variable — a sum of independent, non-identical
//! Bernoulli trials, one per transaction. Every algorithm in the paper
//! reduces to questions about this variable:
//!
//! * the **exact** miners need its probability mass function or its survival
//!   function `Pr{sup ≥ msup}` — computed here by dynamic programming
//!   ([`pb::survival_dp`], `O(N·msup)`) or divide-and-conquer with FFT
//!   convolution ([`pb::pmf_divide_conquer`], `O(N log N)`);
//! * the **approximate** miners need only its first two moments plus the
//!   [Normal](normal) or [Poisson](poisson) approximation to the survival
//!   function (§3.3);
//! * the exact miners' **pruning** uses the [Chernoff tail bound](chernoff)
//!   (Lemma 1).
//!
//! Everything is implemented from scratch on `std`: the [`fft`] module
//! provides the iterative radix-2 transform used for PMF convolution, and
//! [`normal`]/[`gamma`] provide the special functions (`erf`, regularized
//! incomplete gamma) behind the approximations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod chernoff;
pub mod complex;
pub mod conv;
pub mod dft_cf;
pub mod fft;
pub mod gamma;
pub mod normal;
pub mod pb;
pub mod poisson;

pub use binomial::{binomial_survival, detect_constant};
pub use chernoff::{chernoff_prunable, chernoff_upper_bound};
pub use complex::Complex64;
pub use dft_cf::{pmf_dft_cf, survival_dft_cf};
pub use normal::{normal_cdf, normal_survival_with_continuity};
pub use pb::{
    pmf_divide_conquer, pmf_exact, support_moments, survival_dp, survival_from_pmf,
    SupportDistribution,
};
pub use poisson::{poisson_lambda_for_survival, poisson_survival};
