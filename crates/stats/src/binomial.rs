//! Binomial special case of the Poisson-Binomial distribution.
//!
//! When every transaction contains an itemset with the *same* probability
//! `p` — exact for constant probability assignments, near-true for
//! low-variance Gaussian assignments on uniform data — the support is
//! Binomial(M, p) and its survival function has the closed form
//! `Pr{sup ≥ k} = I_p(k, M−k+1)` (regularized incomplete beta), which this
//! module evaluates through the incomplete gamma machinery already in the
//! crate via the standard continued-fraction expansion.
//!
//! The mining engines use this as a fast path when a probability vector is
//! detected (within tolerance) to be constant: `O(1)` after the scan
//! instead of `O(M·msup)`.

use crate::gamma::ln_gamma;

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C({n},{k}) undefined");
    ln_gamma((n + 1) as f64) - ln_gamma((k + 1) as f64) - ln_gamma((n - k + 1) as f64)
}

/// Binomial PMF `C(n,k) p^k (1-p)^{n-k}`, computed in log space.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Regularized incomplete beta `I_x(a, b)` via the Lentz continued fraction
/// (Numerical Recipes `betai`), for `a, b > 0`, `x ∈ [0, 1]`.
pub fn beta_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_reg domain: a={a}, b={b}");
    assert!((0.0..=1.0).contains(&x), "x={x} outside [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Symmetry pick for fast CF convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 400;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Binomial survival `Pr{Bin(n, p) ≥ k} = I_p(k, n−k+1)`.
pub fn binomial_survival(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    beta_reg(k as f64, (n - k + 1) as f64, p)
}

/// If `probs` is constant within `tolerance`, returns that probability.
/// The miners use this to route to the `O(1)` binomial fast path.
pub fn detect_constant(probs: &[f64], tolerance: f64) -> Option<f64> {
    let (&first, rest) = probs.split_first()?;
    rest.iter()
        .all(|&q| (q - first).abs() <= tolerance)
        .then_some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb::survival_dp;

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!((ln_choose(20, 10) - 184_756f64.ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn ln_choose_rejects_k_gt_n() {
        ln_choose(3, 4);
    }

    #[test]
    fn pmf_normalizes_and_handles_edges() {
        let total: f64 = (0..=30).map(|k| binomial_pmf(30, k, 0.37)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 9, 0.5), 0.0);
    }

    #[test]
    fn beta_reg_reference_points() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!((beta_reg(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(2, 2) = 3x² - 2x³.
        for x in [0.1, 0.4, 0.7] {
            let want = 3.0 * x * x - 2.0 * x * x * x;
            assert!((beta_reg(2.0, 2.0, x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn survival_matches_pmf_sum() {
        let (n, p) = (40u64, 0.3);
        for k in 0..=n + 1 {
            let direct: f64 = (k..=n).map(|j| binomial_pmf(n, j, p)).sum();
            let closed = binomial_survival(n, k, p);
            assert!(
                (direct - closed).abs() < 1e-10,
                "k={k}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn survival_matches_poisson_binomial_dp() {
        let p = 0.42;
        let probs = vec![p; 64];
        for msup in [1usize, 10, 27, 40, 64] {
            let pb = survival_dp(&probs, msup);
            let bin = binomial_survival(64, msup as u64, p);
            assert!((pb - bin).abs() < 1e-10, "msup={msup}: {pb} vs {bin}");
        }
    }

    #[test]
    fn constant_detection() {
        assert_eq!(detect_constant(&[0.5, 0.5, 0.5], 0.0), Some(0.5));
        assert_eq!(detect_constant(&[0.5, 0.5001], 1e-3), Some(0.5));
        assert_eq!(detect_constant(&[0.5, 0.6], 1e-3), None);
        assert_eq!(detect_constant(&[], 0.0), None);
        assert_eq!(detect_constant(&[0.9], 0.0), Some(0.9));
    }
}
