//! The Poisson distribution and the threshold inversion used by PDUApriori.
//!
//! Le Cam's theorem lets the Poisson(λ = esup) distribution stand in for the
//! Poisson-Binomial support when individual probabilities are small; the
//! paper's PDUApriori (§3.3.1) exploits monotonicity of the Poisson CDF in λ
//! to turn the probabilistic threshold `pft` into an *expected-support*
//! threshold λ\*, then runs plain UApriori.

use crate::gamma::gamma_p;

/// Poisson PMF `e^{-λ} λ^k / k!`, computed in log space for large arguments.
pub fn poisson_pmf(k: usize, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    let ln_p = -lambda + kf * lambda.ln() - crate::gamma::ln_gamma(kf + 1.0);
    ln_p.exp()
}

/// Poisson CDF `Pr{X ≤ k}` via the regularized upper incomplete gamma:
/// `Pr{X ≤ k} = Q(k+1, λ)`.
pub fn poisson_cdf(k: usize, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 1.0;
    }
    crate::gamma::gamma_q((k + 1) as f64, lambda)
}

/// Poisson survival `Pr{X ≥ k} = P(k, λ)` (regularized lower incomplete
/// gamma), the quantity the paper writes as
/// `1 − e^{-λ} Σ_{i<k} λ^i/i!`.
pub fn poisson_survival(k: usize, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if k == 0 {
        return 1.0;
    }
    if lambda == 0.0 {
        return 0.0;
    }
    gamma_p(k as f64, lambda)
}

/// Direct-summation Poisson survival — `O(k)` but trivially correct; the
/// oracle for [`poisson_survival`] in tests, and useful for very small `k`.
pub fn poisson_survival_direct(k: usize, lambda: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if lambda == 0.0 {
        return 0.0;
    }
    // Pr{X >= k} = 1 - Σ_{i=0}^{k-1} pmf(i); accumulate pmf iteratively.
    let mut term = (-lambda).exp(); // pmf(0)
    let mut cdf = term;
    for i in 1..k {
        term *= lambda / i as f64;
        cdf += term;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Solves for the smallest λ\* with `Pr{Poisson(λ*) ≥ msup} ≥ pft`.
///
/// The survival function is continuous and strictly increasing in λ (for
/// `msup ≥ 1`), so bisection converges; PDUApriori then mines with
/// `min_esup = λ*/N`, accepting exactly those itemsets whose Poisson
/// approximation clears `pft`.
///
/// # Panics
/// Panics if `msup == 0` (every itemset trivially satisfies `sup ≥ 0`) or
/// `pft` outside `(0, 1)`.
pub fn poisson_lambda_for_survival(msup: usize, pft: f64) -> f64 {
    assert!(msup >= 1, "msup must be at least 1");
    assert!(pft > 0.0 && pft < 1.0, "pft must be in (0,1), got {pft}");
    // Bracket: survival(msup, 0) = 0 < pft; grow hi until it clears pft.
    let mut lo = 0.0f64;
    let mut hi = (msup as f64).max(1.0);
    while poisson_survival(msup, hi) < pft {
        hi *= 2.0;
        assert!(hi.is_finite());
    }
    // ~60 halvings reach f64 resolution on any practical bracket.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if poisson_survival(msup, mid) >= pft {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_normalizes() {
        let lambda = 3.7;
        let total: f64 = (0..60).map(|k| poisson_pmf(k, lambda)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_zero_lambda() {
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
        assert_eq!(poisson_cdf(5, 0.0), 1.0);
        assert_eq!(poisson_survival(0, 0.0), 1.0);
        assert_eq!(poisson_survival(2, 0.0), 0.0);
    }

    #[test]
    fn cdf_matches_direct_sum() {
        for &lambda in &[0.5, 2.0, 10.0, 100.0] {
            for &k in &[0usize, 1, 3, 9, 50, 120] {
                let direct: f64 = (0..=k).map(|i| poisson_pmf(i, lambda)).sum();
                let viagamma = poisson_cdf(k, lambda);
                assert!(
                    (direct - viagamma).abs() < 1e-10,
                    "λ={lambda} k={k}: {direct} vs {viagamma}"
                );
            }
        }
    }

    #[test]
    fn survival_complements_cdf() {
        for &lambda in &[0.1, 1.0, 7.3, 42.0] {
            for k in 1..10usize {
                let s = poisson_survival(k, lambda);
                let c = poisson_cdf(k - 1, lambda);
                assert!((s + c - 1.0).abs() < 1e-12, "λ={lambda} k={k}");
            }
        }
    }

    #[test]
    fn survival_matches_direct_oracle() {
        for &lambda in &[0.2, 1.5, 8.0, 30.0] {
            for &k in &[1usize, 2, 5, 12, 40] {
                let fast = poisson_survival(k, lambda);
                let slow = poisson_survival_direct(k, lambda);
                assert!(
                    (fast - slow).abs() < 1e-10,
                    "λ={lambda} k={k}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn survival_monotone_in_lambda() {
        let k = 7;
        let mut prev = -1.0;
        for i in 0..200 {
            let s = poisson_survival(k, i as f64 * 0.1);
            assert!(s >= prev - 1e-13);
            prev = s;
        }
    }

    #[test]
    fn lambda_inversion_roundtrip() {
        for &(msup, pft) in &[(1usize, 0.5), (5, 0.9), (50, 0.7), (500, 0.99), (10, 0.1)] {
            let lambda = poisson_lambda_for_survival(msup, pft);
            let s = poisson_survival(msup, lambda);
            assert!(
                (s - pft).abs() < 1e-9,
                "msup={msup} pft={pft}: λ={lambda} gives survival {s}"
            );
            // Slightly smaller λ must fall below the threshold.
            assert!(poisson_survival(msup, lambda * (1.0 - 1e-6)) < pft + 1e-9);
        }
    }

    #[test]
    fn lambda_for_median_is_near_msup() {
        // The Poisson median sits within ~0.7 of λ, so survival = 0.5 at
        // msup ⇒ λ ≈ msup ± 1.
        let lambda = poisson_lambda_for_survival(100, 0.5);
        assert!((lambda - 100.0).abs() < 1.5, "λ = {lambda}");
    }

    #[test]
    #[should_panic(expected = "msup must be at least 1")]
    fn lambda_rejects_zero_msup() {
        poisson_lambda_for_survival(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "pft must be in (0,1)")]
    fn lambda_rejects_bad_pft() {
        poisson_lambda_for_survival(5, 1.0);
    }
}
