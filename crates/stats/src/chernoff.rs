//! Chernoff-bound pruning for probabilistic frequent itemset mining
//! (paper Lemma 1, §3.2.3).
//!
//! The support of an itemset is Poisson-Binomial with mean `μ = esup(X)`,
//! so the frequent probability `Pr{sup ≥ msup}` admits a closed-form upper
//! bound computable from `μ` alone in `O(1)` (after the `O(N)` expected
//! support computation). Whenever that bound already fails the `pft`
//! threshold, the expensive exact evaluation (DP or DC) is skipped — this is
//! the single most important optimization for the exact miners and is
//! quantified by the Fig 5 experiments (B vs NB variants).
//!
//! With `δ = (msup − μ − 1)/μ` (so `(1+δ)μ = msup − 1 ≤ msup`):
//!
//! * `Pr{sup ≥ msup} ≤ 2^{−δμ}` for `δ > 2e − 1`,
//! * `Pr{sup ≥ msup} ≤ e^{−δ²μ/4}` for `0 < δ < 2e − 1`,
//!
//! and no pruning is possible for `δ ≤ 0` (the mean is already at the
//! threshold).

/// The boundary `2e − 1` between the two bound regimes.
const TWO_E_MINUS_ONE: f64 = 2.0 * std::f64::consts::E - 1.0;

/// Upper bound on `Pr{sup ≥ msup}` for a Poisson-Binomial variable with
/// mean `mu`, per Lemma 1. Returns a value in `[0, 1]`.
///
/// `msup` is the real-valued threshold `N · min_sup` (the paper applies the
/// lemma before rounding; passing the integer `⌈N·min_sup⌉` is also sound
/// because the bound is monotone decreasing in `msup`).
pub fn chernoff_upper_bound(mu: f64, msup: f64) -> f64 {
    debug_assert!(mu >= 0.0, "mean must be non-negative");
    if mu == 0.0 {
        // No transaction can contain the itemset.
        return if msup > 0.0 { 0.0 } else { 1.0 };
    }
    let delta = (msup - mu - 1.0) / mu;
    if delta <= 0.0 {
        return 1.0;
    }
    let bound = if delta > TWO_E_MINUS_ONE {
        2f64.powf(-delta * mu)
    } else {
        (-delta * delta * mu / 4.0).exp()
    };
    bound.clamp(0.0, 1.0)
}

/// True when Lemma 1 proves the itemset probabilistically infrequent, i.e.
/// the upper bound on `Pr{sup ≥ msup}` is `≤ pft` (Definition 4 requires a
/// *strictly greater* frequent probability, so a bound equal to `pft`
/// already rules the itemset out).
pub fn chernoff_prunable(mu: f64, msup: f64, pft: f64) -> bool {
    chernoff_upper_bound(mu, msup) <= pft
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb::survival_dp;

    #[test]
    fn no_pruning_when_mean_reaches_threshold() {
        assert_eq!(chernoff_upper_bound(10.0, 10.0), 1.0);
        assert_eq!(chernoff_upper_bound(10.0, 5.0), 1.0);
        // δ = 0 exactly: msup = mu + 1.
        assert_eq!(chernoff_upper_bound(10.0, 11.0), 1.0);
    }

    #[test]
    fn zero_mean_is_always_prunable() {
        assert_eq!(chernoff_upper_bound(0.0, 3.0), 0.0);
        assert!(chernoff_prunable(0.0, 3.0, 0.1));
        assert_eq!(chernoff_upper_bound(0.0, 0.0), 1.0);
    }

    #[test]
    fn bound_decreases_in_threshold() {
        let mu = 20.0;
        let mut prev = 1.0;
        for msup in 21..200 {
            let b = chernoff_upper_bound(mu, msup as f64);
            assert!(b <= prev + 1e-15, "bound increased at msup={msup}");
            prev = b;
        }
        assert!(prev < 1e-6, "far tail should be tiny, got {prev}");
    }

    #[test]
    fn regime_boundary_is_continuousish() {
        // The two formulas differ at δ = 2e−1, but both stay valid bounds;
        // check they are each within [0,1] around the seam.
        let mu = 10.0;
        let msup_at_seam = (TWO_E_MINUS_ONE * mu) + mu + 1.0;
        for offset in [-0.5, -0.1, 0.0, 0.1, 0.5] {
            let b = chernoff_upper_bound(mu, msup_at_seam + offset);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn bound_dominates_exact_survival_uniform() {
        // Deterministic grid of Poisson-Binomial instances: the bound must
        // never fall below the exact survival probability.
        for &n in &[5usize, 20, 60] {
            for &p in &[0.05, 0.3, 0.7, 0.95] {
                let probs = vec![p; n];
                let mu = p * n as f64;
                for msup in 1..=n {
                    let exact = survival_dp(&probs, msup);
                    let bound = chernoff_upper_bound(mu, msup as f64);
                    assert!(
                        bound >= exact - 1e-12,
                        "n={n} p={p} msup={msup}: bound {bound} < exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_dominates_exact_survival_mixed() {
        let probs: Vec<f64> = (0..40)
            .map(|i| ((i * 17 % 29) as f64 + 1.0) / 30.0)
            .collect();
        let mu: f64 = probs.iter().sum();
        for msup in 1..=probs.len() {
            let exact = survival_dp(&probs, msup);
            let bound = chernoff_upper_bound(mu, msup as f64);
            assert!(
                bound >= exact - 1e-12,
                "msup={msup}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn prunable_respects_strictness() {
        // Construct a case with a tiny bound.
        let mu = 1.0;
        let msup = 50.0;
        let b = chernoff_upper_bound(mu, msup);
        assert!(b < 1e-9);
        assert!(chernoff_prunable(mu, msup, 0.5));
        assert!(!chernoff_prunable(mu, msup, 0.0)); // pft=0 disallowed upstream anyway
    }
}
