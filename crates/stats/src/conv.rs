//! Convolution of probability mass functions.
//!
//! If `sup₁` and `sup₂` are the supports of an itemset over two disjoint
//! halves of the database, the PMF of `sup₁ + sup₂` is the convolution of
//! the halves' PMFs — the "conquer" step of the DC algorithm (paper §3.2.2).
//!
//! Two engines are provided: a naive `O(n·m)` product-sum and an FFT-based
//! `O((n+m) log (n+m))` path. [`convolve`] picks one by size; the crossover
//! constant was chosen by the `stats_pb` Criterion bench (see EXPERIMENTS.md,
//! ablation A-1). Both support a *saturating* mode where index `cap` is a
//! "`≥ cap`" bucket, which lets the exact miners truncate PMFs at the support
//! threshold without losing tail mass.

use crate::complex::Complex64;
use crate::fft::{fft_in_place, ifft_in_place, next_pow2, Direction};

/// Below this output size the naive convolution wins; above it, FFT.
/// Tuned with `cargo bench --bench stats_pb` (conv_crossover group; see
/// EXPERIMENTS.md ablation A-1): measured on this implementation, naive
/// still wins at 511-point outputs (15 µs vs 23 µs) and the curves cross
/// right around 1023 points (51.0 µs vs 51.3 µs).
pub const FFT_CROSSOVER: usize = 1024;

/// Naive convolution: `out[k] = Σ_{i+j=k} a[i]·b[j]`.
pub fn convolve_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based convolution. Small negative round-off values are clamped to 0
/// so downstream probability code never sees `-1e-17`-style noise.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa = vec![Complex64::ZERO; n];
    let mut fb = vec![Complex64::ZERO; n];
    for (slot, &x) in fa.iter_mut().zip(a) {
        *slot = Complex64::real(x);
    }
    for (slot, &x) in fb.iter_mut().zip(b) {
        *slot = Complex64::real(x);
    }
    fft_in_place(&mut fa, Direction::Forward);
    fft_in_place(&mut fb, Direction::Forward);
    for (za, zb) in fa.iter_mut().zip(&fb) {
        *za *= *zb;
    }
    ifft_in_place(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re.max(0.0)).collect()
}

/// Size-dispatching convolution: naive below [`FFT_CROSSOVER`], FFT above.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() + b.len() - 1 <= FFT_CROSSOVER {
        convolve_naive(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// Convolution with saturation at `cap`: the result has length
/// `min(a.len()+b.len()-1, cap+1)` and index `cap` accumulates all mass that
/// would land at `≥ cap`.
///
/// Saturation composes: if index `cap` of an *input* already means "`≥ cap`",
/// the output's `cap` bucket is still exactly "`≥ cap`", because any product
/// involving a saturated index lands at a combined index `≥ cap`.
pub fn convolve_saturating(a: &[f64], b: &[f64], cap: usize) -> Vec<f64> {
    let full = convolve(a, b);
    fold_tail(full, cap)
}

/// Folds all mass at indexes `> cap` into index `cap` ("`≥ cap`" bucket).
pub fn fold_tail(mut pmf: Vec<f64>, cap: usize) -> Vec<f64> {
    if pmf.len() > cap + 1 {
        let tail: f64 = pmf[cap + 1..].iter().sum();
        pmf.truncate(cap + 1);
        pmf[cap] += tail;
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], eps: f64) {
        assert_eq!(a.len(), b.len(), "length mismatch: {a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < eps, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn naive_small_cases() {
        assert_close(&convolve_naive(&[1.0], &[1.0]), &[1.0], 1e-15);
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x²
        assert_close(
            &convolve_naive(&[1.0, 2.0], &[3.0, 4.0]),
            &[3.0, 10.0, 8.0],
            1e-15,
        );
        assert!(convolve_naive(&[], &[1.0]).is_empty());
    }

    #[test]
    fn fft_matches_naive() {
        let a: Vec<f64> = (0..37).map(|i| ((i * 7 % 5) as f64) / 5.0).collect();
        let b: Vec<f64> = (0..53).map(|i| ((i * 3 % 11) as f64) / 11.0).collect();
        assert_close(&convolve_fft(&a, &b), &convolve_naive(&a, &b), 1e-9);
    }

    #[test]
    fn dispatch_matches_both_paths() {
        let a = vec![0.25; 10];
        let b = vec![0.5; 8];
        assert_close(&convolve(&a, &b), &convolve_naive(&a, &b), 1e-12);
        let big_a = vec![0.01; 300];
        let big_b = vec![0.02; 200];
        assert_close(
            &convolve(&big_a, &big_b),
            &convolve_naive(&big_a, &big_b),
            1e-8,
        );
    }

    #[test]
    fn pmf_convolution_preserves_mass() {
        // Bernoulli(0.3) + Bernoulli(0.6)
        let a = [0.7, 0.3];
        let b = [0.4, 0.6];
        let c = convolve(&a, &b);
        assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_close(&c, &[0.28, 0.54, 0.18], 1e-12);
    }

    #[test]
    fn saturating_folds_tail() {
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        // Full: [0.25, 0.5, 0.25]; capped at 1 → [0.25, 0.75]
        assert_close(&convolve_saturating(&a, &b, 1), &[0.25, 0.75], 1e-12);
        // Cap larger than the result leaves it untouched.
        assert_close(&convolve_saturating(&a, &b, 5), &[0.25, 0.5, 0.25], 1e-12);
    }

    #[test]
    fn saturation_composes() {
        // Three Bernoulli(0.5): exact Pr[sup >= 1] = 1 - 0.125 = 0.875.
        let bern = [0.5, 0.5];
        let capped_pair = convolve_saturating(&bern, &bern, 1); // [0.25, 0.75]
        let final_pmf = convolve_saturating(&capped_pair, &bern, 1);
        assert!((final_pmf[1] - 0.875).abs() < 1e-12);
        assert!((final_pmf[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fold_tail_noop_when_short() {
        assert_close(&fold_tail(vec![0.2, 0.8], 5), &[0.2, 0.8], 1e-15);
        assert_close(&fold_tail(vec![0.1, 0.2, 0.3, 0.4], 1), &[0.1, 0.9], 1e-15);
    }

    #[test]
    fn fft_output_non_negative() {
        let a = vec![1e-9; 500];
        let b = vec![1e-9; 400];
        assert!(convolve_fft(&a, &b).iter().all(|&x| x >= 0.0));
    }
}
