//! The standard Normal distribution: `erf`/`erfc`, CDF `Φ`, and the
//! continuity-corrected survival approximation used by NDUApriori and
//! NDUH-Mine (paper §3.3.2–3.3.3).
//!
//! By the Lyapunov central limit theorem the Poisson-Binomial support
//! converges to `N(esup, Var)`; the miners approximate
//! `Pr{sup(X) ≥ msup} ≈ 1 − Φ((msup − 0.5 − esup)/√Var)`.
//!
//! (The paper prints the formula as `Φ((N·min_sup − 0.5 − esup)/√Var)`,
//! which *decreases* in `esup` — an orientation typo. The corrected form
//! above is what [`normal_survival_with_continuity`] computes; see
//! DESIGN.md §5.)
//!
//! `erf`/`erfc` follow W. J. Cody's SPECFUN rational approximations
//! (three regimes split at 0.46875 and 4.0), accurate to ~1 ulp over the
//! full double range — so the only error in the miners' probability
//! estimates is the CLT approximation itself, never the special function.

#![allow(clippy::excessive_precision)] // published coefficient sets, kept verbatim

/// `1/√π`.
const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_286_95;

// Cody's coefficient sets (SPECFUN `CALERF`).
const A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_56e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_47e3,
    1.857_777_061_846_031_53e-1,
];
const B: [f64; 4] = [
    2.360_129_095_234_412_09e1,
    2.440_246_379_344_441_73e2,
    1.282_616_526_077_372_28e3,
    2.844_236_833_439_170_62e3,
];
const C: [f64; 9] = [
    5.641_884_969_886_700_89e-1,
    8.883_149_794_388_375_94e0,
    6.611_919_063_714_162_95e1,
    2.986_351_381_974_001_31e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_58e3,
    2.051_078_377_826_071_47e3,
    1.230_339_354_797_997_25e3,
    2.153_115_354_744_038_46e-8,
];
const D: [f64; 8] = [
    1.574_492_611_070_983_47e1,
    1.176_939_508_913_124_99e2,
    5.371_811_018_620_098_58e2,
    1.621_389_574_566_690_19e3,
    3.290_799_235_733_459_63e3,
    4.362_619_090_143_247_16e3,
    3.439_367_674_143_721_64e3,
    1.230_339_354_803_749_42e3,
];
const P: [f64; 6] = [
    3.053_266_349_612_323_44e-1,
    3.603_448_999_498_044_39e-1,
    1.257_817_261_112_292_46e-1,
    1.608_378_514_874_227_66e-2,
    6.587_491_615_298_378_03e-4,
    1.631_538_713_730_209_78e-2,
];
const Q: [f64; 5] = [
    2.568_520_192_289_822_42e0,
    1.872_952_849_923_460_47e0,
    5.279_051_029_514_284_12e-1,
    6.051_834_131_244_131_91e-2,
    2.335_204_976_268_691_85e-3,
];

/// Core of Cody's algorithm: `erfc(y)` for `y > 0.46875`.
fn erfc_positive_tail(y: f64) -> f64 {
    if y > 26.543 {
        // erfc underflows double precision past ~26.5.
        return 0.0;
    }
    let result = if y <= 4.0 {
        let mut xnum = C[8] * y;
        let mut xden = y;
        for i in 0..7 {
            xnum = (xnum + C[i]) * y;
            xden = (xden + D[i]) * y;
        }
        (xnum + C[7]) / (xden + D[7])
    } else {
        let ysq = 1.0 / (y * y);
        let mut xnum = P[5] * ysq;
        let mut xden = ysq;
        for i in 0..4 {
            xnum = (xnum + P[i]) * ysq;
            xden = (xden + Q[i]) * ysq;
        }
        let r = ysq * (xnum + P[4]) / (xden + Q[4]);
        (FRAC_1_SQRT_PI - r) / y
    };
    // exp(-y²) computed as exp(-ysq²)·exp(-del) with ysq = y rounded to
    // 1/16ths — Cody's trick to avoid cancellation in y² for large y.
    let ysq16 = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq16) * (y + ysq16);
    (-ysq16 * ysq16).exp() * (-del).exp() * result
}

/// `erf(x)`, the error function, to near machine precision.
pub fn erf(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        // Small-argument rational approximation, odd in x.
        let ysq = if y > 1.11e-16 { y * y } else { 0.0 };
        let mut xnum = A[4] * ysq;
        let mut xden = ysq;
        for i in 0..3 {
            xnum = (xnum + A[i]) * ysq;
            xden = (xden + B[i]) * ysq;
        }
        x * (xnum + A[3]) / (xden + B[3])
    } else {
        let ec = erfc_positive_tail(y);
        if x >= 0.0 {
            1.0 - ec
        } else {
            ec - 1.0
        }
    }
}

/// `erfc(x) = 1 − erf(x)`, accurate in both tails (no cancellation for
/// large positive `x`).
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        1.0 - erf(x)
    } else if x >= 0.0 {
        erfc_positive_tail(y)
    } else {
        2.0 - erfc_positive_tail(y)
    }
}

/// Standard Normal CDF `Φ(x) = erfc(−x/√2)/2`, computed through `erfc` for
/// tail accuracy.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard Normal survival `1 − Φ(x) = erfc(x/√2)/2`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Continuity-corrected Normal approximation to the Poisson-Binomial
/// survival function:
///
/// `Pr{sup ≥ msup} ≈ 1 − Φ((msup − 0.5 − mean)/σ)`.
///
/// Degenerate case: when `var` is (numerically) zero the support is the
/// deterministic value `mean`, so the survival is a step function at the
/// corrected threshold.
pub fn normal_survival_with_continuity(mean: f64, var: f64, msup: usize) -> f64 {
    let threshold = msup as f64 - 0.5;
    if var <= f64::EPSILON {
        return if mean >= threshold { 1.0 } else { 0.0 };
    }
    normal_sf((threshold - mean) / var.sqrt())
}

/// The largest expected support `μ*` such that **every** itemset with
/// `esup(X) < μ*` is judged infrequent by the continuity-corrected Normal
/// approximation at `(msup, pft)`, whatever its variance.
///
/// Soundness: the support variance of an itemset is `Σ q_t(1 − q_t) ≤
/// Σ q_t = esup(X)`, and for `esup < msup − 0.5` the approximated survival
/// `1 − Φ((msup − 0.5 − esup)/σ)` is increasing in `σ`, so
/// `σ² = esup` maximizes it. That envelope
/// `f(μ) = 1 − Φ((msup − 0.5 − μ)/√μ)` is strictly increasing on
/// `(0, msup − 0.5)` from 0 to ½; `μ*` is its crossing with `pft`
/// (bisection), or the whole interval when `pft ≥ ½`. The degenerate
/// zero-variance case is a step at `msup − 0.5` and never exceeds the
/// envelope's verdict below it.
///
/// This is the bound NDUApriori pushes into the support engine
/// (`StatRequest::min_esup`): candidates below it can never clear `pft`, so
/// a memoizing engine need not retain their intersection state. It never
/// changes which itemsets are reported.
pub fn normal_esup_lower_bound(msup: usize, pft: f64) -> f64 {
    let threshold = msup as f64 - 0.5;
    if threshold <= 0.0 {
        return 0.0;
    }
    // The envelope tops out just below ½ as μ → threshold.
    if pft >= 0.5 {
        return threshold;
    }
    let envelope = |mu: f64| normal_sf((threshold - mu) / mu.sqrt());
    let (mut lo, mut hi) = (0.0f64, threshold);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if envelope(mid) <= pft {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // `lo` still satisfies envelope(lo) ≤ pft: strictly below it the
    // envelope (and hence the true approximate survival) stays ≤ pft.
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    // High-precision reference values (Wolfram/Abramowitz-Stegun).
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_9),
        (0.4, 0.428_392_355_046_668_45),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (3.0, 0.999_977_909_503_001_4),
        (4.5, 0.999_999_999_803_383_9),
    ];

    #[test]
    fn erf_matches_tables_tightly() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() < 1e-14,
                "erf({x}) = {got:.17} want {want:.17}"
            );
            assert!((erf(-x) + want).abs() < 1e-14, "odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-4.0, -1.0, -0.2, 0.0, 0.4, 1.7, 3.9, 6.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_relative_accuracy() {
        // erfc(3), erfc(5), erfc(10) to published precision.
        let refs = [
            (3.0, 2.209_049_699_858_544e-5),
            (5.0, 1.537_459_794_428_035e-12),
            (10.0, 2.088_487_583_762_545e-45),
        ];
        for (x, want) in refs {
            let got = erfc(x);
            assert!(
                (got / want - 1.0).abs() < 1e-12,
                "erfc({x}) = {got:e} want {want:e}"
            );
        }
        assert_eq!(erfc(30.0), 0.0); // underflow guard
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-13);
        assert!((normal_cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-13);
        assert!((normal_cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-13);
        assert!((normal_cdf(-3.0) - 1.349_898_031_630_094_5e-3).abs() < 1e-15);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let c = normal_cdf(x);
            assert!(c >= prev - 1e-15, "CDF decreased at {x}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
            x += 0.05;
        }
    }

    #[test]
    fn sf_complements_cdf() {
        for x in [-2.5, 0.0, 0.7, 3.1] {
            assert!((normal_cdf(x) + normal_sf(x) - 1.0).abs() < 1e-14);
        }
        // And in the deep tail, SF keeps relative accuracy.
        assert!((normal_sf(6.0) / 9.865_876_450_376_946e-10 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn survival_with_continuity_basic() {
        // Symmetric case: mean exactly at the corrected threshold → 0.5.
        let s = normal_survival_with_continuity(1.5, 1.0, 2);
        assert!((s - 0.5).abs() < 1e-12);
        // Mean far above the threshold → near 1.
        assert!(normal_survival_with_continuity(100.0, 10.0, 10) > 0.999_999);
        // Mean far below → near 0.
        assert!(normal_survival_with_continuity(1.0, 1.0, 50) < 1e-9);
    }

    #[test]
    fn survival_degenerate_variance() {
        assert_eq!(normal_survival_with_continuity(5.0, 0.0, 5), 1.0);
        assert_eq!(normal_survival_with_continuity(4.0, 0.0, 5), 0.0);
    }

    #[test]
    fn survival_increases_with_mean() {
        let mut prev = 0.0;
        for mean10 in 0..100 {
            let s = normal_survival_with_continuity(mean10 as f64 * 0.1, 2.0, 5);
            assert!(s >= prev - 1e-14);
            prev = s;
        }
    }

    #[test]
    fn esup_lower_bound_is_sound_for_every_variance() {
        // Any (mean, var) with mean below the bound and var ≤ mean must be
        // judged infrequent; grid-check the whole admissible region.
        for msup in [1usize, 3, 10, 50, 200] {
            for pft in [0.01, 0.1, 0.3, 0.49, 0.5, 0.9] {
                let bound = normal_esup_lower_bound(msup, pft);
                assert!(bound >= 0.0 && bound <= msup as f64 - 0.5 + 1e-12);
                for frac_mu in [0.01, 0.3, 0.7, 0.99, 0.999999] {
                    let mean = bound * frac_mu;
                    for frac_var in [0.0, 0.2, 0.9, 1.0] {
                        let var = mean * frac_var;
                        let pr = normal_survival_with_continuity(mean, var, msup);
                        assert!(
                            pr <= pft + 1e-12,
                            "msup={msup} pft={pft}: mean={mean} var={var} → Pr={pr} > pft"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn esup_lower_bound_is_tight_at_the_envelope() {
        // Just above the bound, the maximal-variance survival must exceed
        // pft — otherwise the bound is leaving pruning power on the table.
        for (msup, pft) in [(10usize, 0.1), (50, 0.3), (200, 0.05)] {
            let bound = normal_esup_lower_bound(msup, pft);
            let mean = bound * 1.001;
            let pr = normal_survival_with_continuity(mean, mean, msup);
            assert!(
                pr > pft,
                "msup={msup} pft={pft}: bound {bound} not tight (Pr={pr})"
            );
        }
    }

    #[test]
    fn esup_lower_bound_saturates_at_half() {
        // pft ≥ ½ dominates the whole sub-threshold range.
        assert_eq!(normal_esup_lower_bound(10, 0.5), 9.5);
        assert_eq!(normal_esup_lower_bound(10, 0.9), 9.5);
        assert_eq!(normal_esup_lower_bound(1, 0.7), 0.5);
    }

    #[test]
    fn clt_tracks_exact_binomial() {
        // For Binomial(400, 0.5) the CLT error is O(1/√n); check the Normal
        // approximation lands within 1e-3 of the exact survival at the mean.
        let probs = vec![0.5; 400];
        let exact = crate::pb::survival_dp(&probs, 200);
        let approx = normal_survival_with_continuity(200.0, 100.0, 200);
        assert!(
            (exact - approx).abs() < 1e-3,
            "exact {exact} vs normal {approx}"
        );
    }
}
