//! Iterative radix-2 Cooley–Tukey fast Fourier transform.
//!
//! The divide-and-conquer frequent-probability algorithm (paper §3.2.2)
//! owes its `O(N log N)` complexity to FFT-based convolution of support
//! PMFs; this module is that FFT, built from scratch so the workspace has no
//! external numeric dependencies.
//!
//! The implementation is the standard in-place bit-reversal-permutation +
//! butterfly scheme. Sizes must be powers of two; [`next_pow2`] helps callers
//! pad. Accuracy is ~1e-12 relative for the PMF sizes this workspace uses
//! (up to a few hundred thousand points).

use crate::complex::Complex64;

/// Direction of the transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = Σ x_n e^{-2πi kn/N}`.
    Forward,
    /// Unnormalized inverse; [`ifft_in_place`] applies the `1/N` factor.
    Inverse,
}

/// Smallest power of two `≥ n` (and `≥ 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place FFT of a power-of-two-length buffer.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex64], dir: Direction) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT size {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies, bottom-up.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT, returning a new buffer (input padded to a power of two).
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut buf = vec![Complex64::ZERO; next_pow2(input.len())];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place(&mut buf, Direction::Forward);
    buf
}

/// Inverse FFT with `1/N` normalization, in place.
pub fn ifft_in_place(buf: &mut [Complex64]) {
    fft_in_place(buf, Direction::Inverse);
    let k = 1.0 / buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(k);
    }
}

/// Naive `O(n²)` discrete Fourier transform — a correctness oracle for the
/// fast path, kept public so tests and benches can call it.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let mut buf = vec![Complex64::ZERO; 3];
        fft_in_place(&mut buf, Direction::Forward);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut buf = vec![Complex64::ZERO; 8];
        buf[0] = Complex64::ONE;
        fft_in_place(&mut buf, Direction::Forward);
        for z in buf {
            assert!(close(z, Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut buf = vec![Complex64::ONE; 8];
        fft_in_place(&mut buf, Direction::Forward);
        assert!(close(buf[0], Complex64::real(8.0), 1e-12));
        for z in &buf[1..] {
            assert!(close(*z, Complex64::ZERO, 1e-12));
        }
    }

    #[test]
    fn roundtrip_identity() {
        let input: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut buf = input.clone();
        fft_in_place(&mut buf, Direction::Forward);
        ifft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&input) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn matches_naive_dft() {
        let input: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(((i * 13 % 7) as f64) * 0.25, ((i * 5 % 11) as f64) * 0.1))
            .collect();
        let fast = fft(&input);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let input: Vec<Complex64> = (0..128)
            .map(|i| Complex64::real(((i * 31 % 17) as f64) / 17.0))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft(&input);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn size_one_is_identity() {
        let mut buf = vec![Complex64::new(2.5, -1.0)];
        fft_in_place(&mut buf, Direction::Forward);
        assert_eq!(buf[0], Complex64::new(2.5, -1.0));
    }
}
