//! A minimal complex-number type for the FFT.
//!
//! Only the operations the radix-2 transform needs are provided; this is not
//! a general-purpose complex library.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Constructs from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// A real number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ` — the FFT twiddle factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn cis_is_unit_circle() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
        assert!((Complex64::cis(1.234).abs() - 1.0).abs() < EPS);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.scale(2.0), Complex64::new(6.0, 8.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::new(0.0, 1.0);
        z *= Complex64::new(0.0, 1.0);
        // (1+i)·i = -1 + i
        assert!((z.re + 1.0).abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
    }
}
