//! `ufim-bench` — the experiment harness binary. See crate docs
//! (`cargo doc -p ufim-bench`) and `ufim-bench help` for usage.

use ufim_bench::experiments::{fig4, fig5, fig6, matrix, tables};
use ufim_bench::HarnessConfig;
use ufim_core::{MeasureKind, TraversalKind};

/// The paper's memory metric needs a counting allocator installed in the
/// process that runs the miners.
#[global_allocator]
static ALLOC: ufim_metrics::CountingAllocator = ufim_metrics::CountingAllocator::new();

const HELP: &str = "\
ufim-bench — regenerate the tables and figures of Tong et al., VLDB 2012

USAGE:
    ufim-bench <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    table1            worked example (Tables 1-2, Examples 1-2)
    table6            dataset characteristics (paper vs generated)
    table7            default parameters
    fig4 [--panel P]  expected-support miners   (P: minesup|scale|zipf|all)
    fig5 [--panel P]  exact probabilistic miners (P: minsup|pft|scale|zipf|all)
    fig6 [--panel P]  approximate miners         (P: minsup|pft|scale|zipf|all)
    matrix            measure × traversal × engine grid (beyond Table 10);
                      restrict with --measure esup|poisson|normal|exact-dp|
                      exact-dc and/or --traversal level-wise|hyper|tree
    table8            precision/recall on Accident
    table9            precision/recall on Kosarak
    table10           winner summary grid
    all               everything, in paper order
    json-check PATH   validate BENCH_*.json snapshots (a file, or every
                      snapshot in a directory) — CI proves --json output
                      is machine-readable
    json-compare BASELINE FRESH [--tolerance-pct P]
                      the bench-regression gate: every baseline snapshot
                      needs a fresh counterpart whose counters
                      (intersections, num_itemsets) and labels match
                      EXACTLY (exit 1 on drift — counters are
                      deterministic across machines and pool sizes);
                      wall_ms drift beyond ±P% (default 200) and
                      peak_memo_bytes changes only warn
    help              this text

OPTIONS (all subcommands):
    --scale X         fraction of paper-size transaction counts (default 0.01)
    --seed N          master RNG seed (default 42)
    --timeout-secs S  per-point budget; harder points skipped after a miss
                      (default 60; paper used 3600)
    --csv DIR         also write CSV series into DIR
    --json DIR        also write a machine-readable BENCH_<exp>.json
                      performance snapshot per experiment into DIR
                      (workload, wall_ms, peak/memo bytes, intersections)
    --engine E        support backend: horizontal (default), vertical,
                      diffset (memory-optimized delta memo), or both/all
                      (runs every experiment once per backend)
    --mem             add auxiliary-structure peak columns (struct units +
                      engine memo bytes) next to the allocator-level mem
                      column in reports and CSV
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = match HarnessConfig::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let sub = rest.first().map(String::as_str).unwrap_or("help");
    let panel_arg = rest
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    match sub {
        "table1" => tables::table1_example(),
        "table6" => tables::table6(&cfg),
        "table7" => tables::table7(),
        "fig4" => {
            let panel = match panel_arg {
                "minesup" => fig4::Fig4Panel::MinEsup,
                "scale" => fig4::Fig4Panel::Scalability,
                "zipf" => fig4::Fig4Panel::Zipf,
                "all" => fig4::Fig4Panel::All,
                other => return bad_panel(other),
            };
            fig4::run(&cfg, panel);
        }
        "fig5" => {
            let panel = match panel_arg {
                "minsup" => fig5::Fig5Panel::MinSup,
                "pft" => fig5::Fig5Panel::Pft,
                "scale" => fig5::Fig5Panel::Scalability,
                "zipf" => fig5::Fig5Panel::Zipf,
                "all" => fig5::Fig5Panel::All,
                other => return bad_panel(other),
            };
            fig5::run(&cfg, panel);
        }
        "fig6" => {
            let panel = match panel_arg {
                "minsup" => fig6::Fig6Panel::MinSup,
                "pft" => fig6::Fig6Panel::Pft,
                "scale" => fig6::Fig6Panel::Scalability,
                "zipf" => fig6::Fig6Panel::Zipf,
                "all" => fig6::Fig6Panel::All,
                other => return bad_panel(other),
            };
            fig6::run(&cfg, panel);
        }
        "matrix" => {
            let measure = match flag_value(&rest, "--measure") {
                Some(v) => match MeasureKind::parse(v) {
                    Some(m) => Some(m),
                    None => {
                        eprintln!("error: unknown --measure {v:?}\n\n{HELP}");
                        std::process::exit(2);
                    }
                },
                None => None,
            };
            let traversal = match flag_value(&rest, "--traversal") {
                Some(v) => match TraversalKind::parse(v) {
                    Some(t) => Some(t),
                    None => {
                        eprintln!("error: unknown --traversal {v:?}\n\n{HELP}");
                        std::process::exit(2);
                    }
                },
                None => None,
            };
            matrix::run(&cfg, measure, traversal);
        }
        "json-check" => {
            let Some(path) = rest.get(1) else {
                eprintln!("error: json-check needs a path\n\n{HELP}");
                std::process::exit(2);
            };
            match ufim_bench::json::check_path(std::path::Path::new(path)) {
                Ok(summaries) => {
                    for s in summaries {
                        println!("{s}");
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        "json-compare" => {
            let (Some(baseline), Some(fresh)) = (rest.get(1), rest.get(2)) else {
                eprintln!("error: json-compare needs BASELINE and FRESH paths\n\n{HELP}");
                std::process::exit(2);
            };
            let tolerance_pct = match flag_value(&rest, "--tolerance-pct") {
                Some(v) => match v.parse::<f64>() {
                    Ok(p) if p >= 0.0 => p,
                    _ => {
                        eprintln!("error: bad --tolerance-pct value {v:?}\n\n{HELP}");
                        std::process::exit(2);
                    }
                },
                None => ufim_bench::json::DEFAULT_TOLERANCE_PCT,
            };
            match ufim_bench::json::compare_paths(
                std::path::Path::new(baseline),
                std::path::Path::new(fresh),
                tolerance_pct,
            ) {
                Ok(report) => {
                    for line in &report.lines {
                        println!("{line}");
                    }
                    for warning in &report.warnings {
                        println!("warning: {warning}");
                    }
                    for failure in &report.failures {
                        eprintln!("FAIL: {failure}");
                    }
                    if !report.passed() {
                        eprintln!(
                            "bench regression gate FAILED: {} counter/shape mismatch(es)",
                            report.failures.len()
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "bench regression gate passed ({} snapshot(s), {} warning(s))",
                        report.lines.len(),
                        report.warnings.len()
                    );
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        "table8" => tables::table8(&cfg),
        "table9" => tables::table9(&cfg),
        "table10" => tables::table10(&cfg),
        "all" => {
            tables::table1_example();
            println!();
            tables::table6(&cfg);
            println!();
            tables::table7();
            fig4::run(&cfg, fig4::Fig4Panel::All);
            fig5::run(&cfg, fig5::Fig5Panel::All);
            fig6::run(&cfg, fig6::Fig6Panel::All);
            println!();
            tables::table8(&cfg);
            println!();
            tables::table9(&cfg);
            println!();
            tables::table10(&cfg);
            println!();
            matrix::run(&cfg, None, None);
        }
        "help" | "--help" | "-h" => print!("{HELP}"),
        other => {
            eprintln!("error: unknown subcommand {other:?}\n\n{HELP}");
            std::process::exit(2);
        }
    }
}

fn bad_panel(p: &str) {
    eprintln!("error: unknown --panel {p:?}\n\n{HELP}");
    std::process::exit(2);
}

/// The value following a `--flag` in the unconsumed argument list. A flag
/// present without a value is a usage error (exit 2), not an absent flag.
fn flag_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    let i = rest.iter().position(|a| a == flag)?;
    match rest.get(i + 1) {
        Some(v) => Some(v.as_str()),
        None => {
            eprintln!("error: {flag} needs a value\n\n{HELP}");
            std::process::exit(2);
        }
    }
}
