//! **Figure 4** — performance of the expected-support-based algorithms
//! (UApriori, UH-Mine, UFP-growth).
//!
//! Sub-figures regenerated:
//! * (a)–(d) running time vs `min_esup` on Connect/Accident/Kosarak/Gazelle,
//! * (e)–(h) memory vs `min_esup` (same runs, memory column),
//! * (i)–(j) scalability on T25I15D320k, 20k → 320k transactions,
//! * (k)–(l) Zipf probability model, skew 0.8 → 2.0 (dense dataset, as in
//!   the paper: sparse data under Zipf yields no meaningful itemsets).

use super::{engine_algos, engine_tag, fmt_x, Sweep};
use crate::config::HarnessConfig;
use crate::runner::run_expected_with;
use ufim_data::{Benchmark, ProbabilityModel};
use ufim_miners::Algorithm;

/// `min_esup` sweep values per dataset, mirroring the x axes of Fig 4(a)–(d).
pub fn min_esup_axis(b: Benchmark) -> Vec<f64> {
    match b {
        Benchmark::Connect => vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4],
        Benchmark::Accident => vec![0.5, 0.4, 0.3, 0.2, 0.1],
        Benchmark::Kosarak => vec![0.1, 0.05, 0.01, 0.005, 0.0025, 0.001],
        Benchmark::Gazelle => vec![0.1, 0.01, 0.001, 1e-4],
        Benchmark::T25I15D320k => vec![0.5, 0.3, 0.1],
    }
}

/// The scalability x axis: thousands of transactions, as in Fig 4(i).
pub const SCALE_AXIS_K: [usize; 6] = [20, 40, 80, 100, 160, 320];

/// The Zipf skew axis of Fig 4(k)–(l).
pub const ZIPF_SKEW_AXIS: [f64; 4] = [0.8, 1.2, 1.6, 2.0];

/// `min_esup` used in the Zipf panels. Zipf-level probabilities are much
/// smaller on average than the Gaussian defaults, so the paper-style dense
/// threshold (0.5) would find nothing; 0.05 keeps one to two mining levels
/// alive across the whole skew axis (see EXPERIMENTS.md).
pub const ZIPF_MIN_ESUP: f64 = 0.05;

/// Panels of Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig4Panel {
    /// (a)–(h): per-dataset `min_esup` sweeps.
    MinEsup,
    /// (i)–(j): scalability.
    Scalability,
    /// (k)–(l): Zipf skew.
    Zipf,
    /// Everything.
    All,
}

/// Runs the requested panel(s). Datasets are generated once per panel and
/// shared across the configured support backends (generation is seeded, so
/// every backend sees the identical database).
pub fn run(cfg: &HarnessConfig, panel: Fig4Panel) {
    if matches!(panel, Fig4Panel::MinEsup | Fig4Panel::All) {
        for (sub, b) in [
            ("(a)+(e)", Benchmark::Connect),
            ("(b)+(f)", Benchmark::Accident),
            ("(c)+(g)", Benchmark::Kosarak),
            ("(d)+(h)", Benchmark::Gazelle),
        ] {
            let db = b.generate(cfg.scale, cfg.seed);
            let xs = min_esup_axis(b);
            let labels: Vec<String> = xs.iter().map(|&x| fmt_x(x)).collect();
            for &engine in &cfg.engines {
                let (ttag, ftag) = engine_tag(cfg, engine);
                let algos = engine_algos(&Algorithm::EXPECTED_SUPPORT, engine);
                let sweep = Sweep::execute(
                    format!(
                        "Fig 4{sub}  {}: min_esup vs time/memory (N={}, scale={}{ttag})",
                        b.name(),
                        db.num_transactions(),
                        cfg.scale
                    ),
                    "min_esup",
                    &algos,
                    &labels,
                    cfg,
                    |algo, xi| run_expected_with(algo, &db, xs[xi], engine),
                );
                sweep.report(
                    cfg,
                    &format!("fig4_minesup_{}{ftag}", b.name().to_lowercase()),
                    engine,
                );
            }
        }
    }

    if matches!(panel, Fig4Panel::Scalability | Fig4Panel::All) {
        let b = Benchmark::T25I15D320k;
        let min_esup = b.defaults().min_sup;
        // Generate once at the largest size, truncate downward.
        let full = b.generate(cfg.scale, cfg.seed);
        let xs: Vec<usize> = SCALE_AXIS_K
            .iter()
            .map(|&k| ((k * 1000) as f64 * cfg.scale).round() as usize)
            .collect();
        let labels: Vec<String> = xs.iter().map(|&n| format!("{n}")).collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let algos = engine_algos(&Algorithm::EXPECTED_SUPPORT, engine);
            let sweep = Sweep::execute(
                format!(
                    "Fig 4(i)+(j)  T25I15D320k scalability (min_esup={min_esup}, scale={}{ttag})",
                    cfg.scale
                ),
                "#trans",
                &algos,
                &labels,
                cfg,
                |algo, xi| {
                    let db = full.truncated(xs[xi]);
                    run_expected_with(algo, &db, min_esup, engine)
                },
            );
            sweep.report(cfg, &format!("fig4_scalability{ftag}"), engine);
        }
    }

    if matches!(panel, Fig4Panel::Zipf | Fig4Panel::All) {
        let b = Benchmark::Connect;
        let det_seed = cfg.seed;
        let labels: Vec<String> = ZIPF_SKEW_AXIS.iter().map(|&s| format!("{s}")).collect();
        // Regenerating the probability assignment per skew, structure fixed.
        let dbs: Vec<_> = ZIPF_SKEW_AXIS
            .iter()
            .map(|&skew| b.generate_with_model(cfg.scale, det_seed, &ProbabilityModel::zipf(skew)))
            .collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let algos = engine_algos(&Algorithm::EXPECTED_SUPPORT, engine);
            let sweep = Sweep::execute(
                format!(
                    "Fig 4(k)+(l)  Zipf skew vs time/memory ({}, min_esup={ZIPF_MIN_ESUP}, scale={}{ttag})",
                    b.name(),
                    cfg.scale
                ),
                "skew",
                &algos,
                &labels,
                cfg,
                |algo, xi| run_expected_with(algo, &dbs[xi], ZIPF_MIN_ESUP, engine),
            );
            sweep.report(cfg, &format!("fig4_zipf{ftag}"), engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_match_paper_shapes() {
        assert_eq!(min_esup_axis(Benchmark::Connect).len(), 6);
        assert_eq!(min_esup_axis(Benchmark::Gazelle).len(), 4);
        assert_eq!(SCALE_AXIS_K.len(), 6);
        // Axes are monotone in difficulty (descending threshold).
        let ax = min_esup_axis(Benchmark::Accident);
        assert!(ax.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn zipf_panel_runs_at_tiny_scale() {
        let cfg = HarnessConfig {
            scale: 0.001,
            ..Default::default()
        };
        // Smoke test: must complete quickly and not panic.
        run(&cfg, Fig4Panel::Zipf);
    }
}
