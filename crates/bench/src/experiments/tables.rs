//! The paper's tables: the worked example (Tables 1–2), dataset
//! characteristics (Table 6), default parameters (Table 7), approximation
//! accuracy (Tables 8–9), and the winner summary (Table 10).

use crate::config::HarnessConfig;
use crate::runner::{run_expected, run_probabilistic};
use ufim_core::prelude::*;
use ufim_data::Benchmark;
use ufim_metrics::accuracy::precision_recall;
use ufim_metrics::table::Table;
use ufim_miners::{Algorithm, DcMiner, UApriori};

/// Prints the worked micro-example: Table 1's database, Example 1's
/// expected-support mining, and the Example 2-style probabilistic run.
pub fn table1_example() {
    let db = ufim_core::examples::paper_table1();
    println!("=== Table 1: the paper's example uncertain database ===");
    let names = ["A", "B", "C", "D", "E", "F"];
    for (i, t) in db.transactions().iter().enumerate() {
        let units: Vec<String> = t
            .units()
            .map(|(item, p)| format!("{} ({p})", names[item as usize]))
            .collect();
        println!("T{}: {}", i + 1, units.join("  "));
    }

    println!("\n=== Example 1: expected-support-based frequent itemsets (min_esup = 0.5) ===");
    let r = UApriori::new().mine_expected_ratio(&db, 0.5).unwrap();
    for fi in &r.itemsets {
        let label: Vec<&str> = fi
            .itemset
            .items()
            .iter()
            .map(|&i| names[i as usize])
            .collect();
        println!("{{{}}}  esup = {:.1}", label.join(","), fi.expected_support);
    }

    println!(
        "\n=== Example 2 style: probabilistic frequent itemsets (min_sup = 0.5, pft = 0.7) ==="
    );
    let r = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, 0.5, 0.7)
        .unwrap();
    for fi in &r.itemsets {
        let label: Vec<&str> = fi
            .itemset
            .items()
            .iter()
            .map(|&i| names[i as usize])
            .collect();
        println!(
            "{{{}}}  esup = {:.2}  Pr{{sup ≥ 2}} = {:.4}",
            label.join(","),
            fi.expected_support,
            fi.frequent_prob.unwrap()
        );
    }
}

/// Prints Table 6 — paper-published shapes next to the measured shapes of
/// the generated analogs at the configured scale.
pub fn table6(cfg: &HarnessConfig) {
    println!(
        "=== Table 6: characteristics of datasets (paper vs generated at scale {}) ===",
        cfg.scale
    );
    let mut t = Table::new([
        "Dataset",
        "paper #Trans",
        "gen #Trans",
        "paper #Items",
        "gen #Items",
        "paper AveLen",
        "gen AveLen",
        "paper Density",
        "gen Density",
    ]);
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let shape = b.paper_shape();
        let det = b.generate_deterministic(cfg.scale, cfg.seed);
        t.row([
            b.name().to_string(),
            shape.num_transactions.to_string(),
            det.num_transactions().to_string(),
            shape.num_items.to_string(),
            det.num_items().to_string(),
            format!("{}", shape.avg_len),
            format!("{:.2}", det.avg_transaction_len()),
            format!("{}", shape.density),
            format!("{:.5}", det.density()),
        ]);
        rows.push(format!(
            "{},{},{},{},{},{},{:.3},{},{:.5}",
            b.name(),
            shape.num_transactions,
            det.num_transactions(),
            shape.num_items,
            det.num_items(),
            shape.avg_len,
            det.avg_transaction_len(),
            shape.density,
            det.density()
        ));
    }
    print!("{t}");
    cfg.write_csv(
        "table6",
        "dataset,paper_trans,gen_trans,paper_items,gen_items,paper_avelen,gen_avelen,paper_density,gen_density",
        &rows,
    );
}

/// Prints Table 7 — the default parameters of each dataset.
pub fn table7() {
    println!("=== Table 7: default parameters of datasets ===");
    let mut t = Table::new(["Dataset", "Mean", "Var.", "min_sup", "pft"]);
    for b in Benchmark::ALL {
        let d = b.defaults();
        t.row([
            b.name().to_string(),
            format!("{}", d.mean),
            format!("{}", d.variance),
            format!("{}", d.min_sup),
            format!("{}", d.pft),
        ]);
    }
    print!("{t}");
}

/// `min_sup` values of Table 8 (Accident).
pub const TABLE8_MIN_SUPS: [f64; 5] = [0.2, 0.3, 0.4, 0.5, 0.6];
/// `min_sup` values of Table 9 (Kosarak).
pub const TABLE9_MIN_SUPS: [f64; 5] = [0.0025, 0.005, 0.01, 0.05, 0.1];

/// Shared implementation of Tables 8 and 9: precision/recall of the three
/// approximate miners against the exact result (DCB).
pub fn accuracy_table(cfg: &HarnessConfig, b: Benchmark, min_sups: &[f64], csv: &str) {
    let db = b.generate(cfg.scale, cfg.seed);
    let pft = b.defaults().pft;
    println!(
        "=== {}: accuracy in {} (pft={pft}, N={}, scale={}) ===",
        csv,
        b.name(),
        db.num_transactions(),
        cfg.scale
    );
    let mut t = Table::new([
        "Min Sup",
        "PDUApriori P",
        "PDUApriori R",
        "NDUApriori P",
        "NDUApriori R",
        "NDUH-Mine P",
        "NDUH-Mine R",
    ]);
    let mut rows = Vec::new();
    for &ms in min_sups {
        let exact = DcMiner::with_pruning()
            .mine_probabilistic_raw(&db, ms, pft)
            .expect("valid params");
        let mut row = vec![super::fmt_x(ms)];
        let mut csvrow = vec![format!("{ms}")];
        for algo in [
            Algorithm::PDUApriori,
            Algorithm::NDUApriori,
            Algorithm::NDUHMine,
        ] {
            let approx = algo
                .probabilistic_miner()
                .unwrap()
                .mine_probabilistic_raw(&db, ms, pft)
                .expect("valid params");
            let acc = precision_recall(&approx, &exact);
            row.push(format!("{:.2}", acc.precision));
            row.push(format!("{:.2}", acc.recall));
            csvrow.push(format!("{:.4}", acc.precision));
            csvrow.push(format!("{:.4}", acc.recall));
        }
        t.row(row);
        rows.push(csvrow.join(","));
    }
    print!("{t}");
    cfg.write_csv(
        csv,
        "min_sup,pdu_precision,pdu_recall,ndu_precision,ndu_recall,nduh_precision,nduh_recall",
        &rows,
    );
}

/// Table 8: accuracy in Accident.
pub fn table8(cfg: &HarnessConfig) {
    accuracy_table(cfg, Benchmark::Accident, &TABLE8_MIN_SUPS, "table8");
}

/// Table 9: accuracy in Kosarak.
pub fn table9(cfg: &HarnessConfig) {
    accuracy_table(cfg, Benchmark::Kosarak, &TABLE9_MIN_SUPS, "table9");
}

/// Table 10 — the winner-summary grid, derived from fresh measurements on a
/// dense (Accident) and a sparse (Kosarak) dataset at high and low
/// thresholds.
pub fn table10(cfg: &HarnessConfig) {
    println!(
        "=== Table 10: winners by time and memory (measured, scale={}) ===",
        cfg.scale
    );
    let dense = Benchmark::Accident.generate(cfg.scale, cfg.seed);
    let sparse = Benchmark::Kosarak.generate(cfg.scale, cfg.seed);
    let pft = 0.9;

    let mut t = Table::new(["Case", "fastest", "least memory"]);
    // Millisecond-scale runs are noisy; each cell is the best of three
    // repetitions (standard min-of-k de-noising for wall-clock winners).
    const REPS: usize = 3;
    let mut report = |case: &str, runs: Vec<crate::runner::MeasuredRun>| {
        let fastest = runs
            .iter()
            .min_by(|a, b| a.time_secs.partial_cmp(&b.time_secs).expect("finite"))
            .map(|r| r.algorithm)
            .unwrap_or("-");
        let frugal = runs
            .iter()
            .min_by_key(|r| r.peak_bytes)
            .map(|r| r.algorithm)
            .unwrap_or("-");
        t.row([case.to_string(), fastest.to_string(), frugal.to_string()]);
    };
    fn best_of<F: FnMut() -> crate::runner::MeasuredRun>(
        reps: usize,
        mut f: F,
    ) -> crate::runner::MeasuredRun {
        let mut best = f();
        for _ in 1..reps {
            let r = f();
            if r.time_secs < best.time_secs {
                best = r;
            }
        }
        best
    }

    // Expected-support group, dense high/low threshold and sparse.
    for (case, db, min_esup) in [
        ("esup: dense, high min_esup", &dense, 0.4),
        ("esup: dense, low min_esup", &dense, 0.1),
        ("esup: sparse", &sparse, 0.0025),
    ] {
        let runs = Algorithm::EXPECTED_SUPPORT
            .iter()
            .map(|&a| best_of(REPS, || run_expected(a, db, min_esup)))
            .collect();
        report(case, runs);
    }

    // Exact probabilistic group.
    for (case, db, min_sup) in [
        ("exact: dense", &dense, 0.5),
        ("exact: sparse", &sparse, 0.0025),
    ] {
        let runs = Algorithm::EXACT_PROBABILISTIC
            .iter()
            .map(|&a| best_of(REPS, || run_probabilistic(a, db, min_sup, pft)))
            .collect();
        report(case, runs);
    }

    // Approximate group.
    for (case, db, min_sup) in [
        ("approx: dense, high min_sup", &dense, 0.4),
        ("approx: dense, low min_sup", &dense, 0.1),
        ("approx: sparse", &sparse, 0.0025),
    ] {
        let runs = super::fig6::APPROX_ONLY
            .iter()
            .map(|&a| best_of(REPS, || run_probabilistic(a, db, min_sup, pft)))
            .collect();
        report(case, runs);
    }

    print!("{t}");
    println!(
        "\nPaper's Table 10 expectations: UApriori wins dense+high-threshold, UH-Mine wins \
         sparse/low-threshold, UFP-growth never wins; DC beats DP in time, DP beats DC in \
         memory; PDU/NDUApriori win dense, NDUH-Mine wins sparse."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_prints() {
        table7(); // smoke: must not panic
    }

    #[test]
    fn table1_example_prints() {
        table1_example();
    }

    #[test]
    fn accuracy_table_smoke() {
        let cfg = HarnessConfig {
            scale: 0.002,
            ..Default::default()
        };
        accuracy_table(&cfg, Benchmark::Gazelle, &[0.05], "test_accuracy");
    }
}
