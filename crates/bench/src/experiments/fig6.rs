//! **Figure 6** — approximate probabilistic algorithms (PDUApriori,
//! NDUApriori, NDUH-Mine) against the exact reference DCB.
//!
//! Sub-figures regenerated:
//! * (a)–(d) time and memory vs `min_sup` on Accident and Kosarak
//!   (all four algorithms, DCB as the exact baseline),
//! * (e)–(h) time and memory vs `pft`,
//! * (i)–(j) scalability (approximate algorithms only, as in the paper),
//! * (k)–(l) Zipf skew (approximate algorithms only).

use super::{engine_algos, engine_tag, fmt_x, Sweep};
use crate::config::HarnessConfig;
use crate::runner::run_probabilistic_with;
use ufim_data::{Benchmark, ProbabilityModel};
use ufim_miners::Algorithm;

/// `min_sup` sweeps of Fig 6(a)/(c).
pub fn min_sup_axis(b: Benchmark) -> Vec<f64> {
    match b {
        // Fig 6(a): 0.5 → 0.01.
        Benchmark::Accident => vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.01],
        // Fig 6(c): 0.01 → 0.001.
        Benchmark::Kosarak => vec![0.01, 0.005, 0.0025, 0.0015, 0.001],
        _ => vec![0.5, 0.3, 0.1],
    }
}

/// `pft` sweep of Fig 6(e)–(h).
pub const PFT_AXIS: [f64; 5] = [0.9, 0.7, 0.5, 0.3, 0.1];

/// Zipf skew axis.
pub const ZIPF_SKEW_AXIS: [f64; 4] = [0.8, 1.2, 1.6, 2.0];

/// `min_sup` for the Zipf panels.
pub const ZIPF_MIN_SUP: f64 = 0.05;

/// The three approximate algorithms (scalability/Zipf panels).
pub const APPROX_ONLY: [Algorithm; 3] = [
    Algorithm::PDUApriori,
    Algorithm::NDUApriori,
    Algorithm::NDUHMine,
];

/// Panels of Figure 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Panel {
    /// (a)–(d): `min_sup` sweeps.
    MinSup,
    /// (e)–(h): `pft` sweeps.
    Pft,
    /// (i)–(j): scalability.
    Scalability,
    /// (k)–(l): Zipf skew.
    Zipf,
    /// Everything.
    All,
}

/// Runs the requested panel(s). Datasets are generated once per panel and
/// shared across the configured support backends (generation is seeded, so
/// every backend sees the identical database).
pub fn run(cfg: &HarnessConfig, panel: Fig6Panel) {
    if matches!(panel, Fig6Panel::MinSup | Fig6Panel::All) {
        for (sub, b) in [
            ("(a)+(b)", Benchmark::Accident),
            ("(c)+(d)", Benchmark::Kosarak),
        ] {
            let db = b.generate(cfg.scale, cfg.seed);
            let pft = b.defaults().pft;
            let xs = min_sup_axis(b);
            let labels: Vec<String> = xs.iter().map(|&x| fmt_x(x)).collect();
            for &engine in &cfg.engines {
                let (ttag, ftag) = engine_tag(cfg, engine);
                let algos = engine_algos(&Algorithm::APPROXIMATE, engine);
                let sweep = Sweep::execute(
                    format!(
                        "Fig 6{sub}  {}: min_sup vs time/memory (pft={pft}, N={}, scale={}{ttag})",
                        b.name(),
                        db.num_transactions(),
                        cfg.scale
                    ),
                    "min_sup",
                    &algos,
                    &labels,
                    cfg,
                    |algo, xi| run_probabilistic_with(algo, &db, xs[xi], pft, engine),
                );
                sweep.report(
                    cfg,
                    &format!("fig6_minsup_{}{ftag}", b.name().to_lowercase()),
                    engine,
                );
            }
        }
    }

    if matches!(panel, Fig6Panel::Pft | Fig6Panel::All) {
        for (sub, b) in [
            ("(e)+(f)", Benchmark::Accident),
            ("(g)+(h)", Benchmark::Kosarak),
        ] {
            let db = b.generate(cfg.scale, cfg.seed);
            let min_sup = b.defaults().min_sup;
            let labels: Vec<String> = PFT_AXIS.iter().map(|&x| fmt_x(x)).collect();
            for &engine in &cfg.engines {
                let (ttag, ftag) = engine_tag(cfg, engine);
                let algos = engine_algos(&Algorithm::APPROXIMATE, engine);
                let sweep = Sweep::execute(
                    format!(
                        "Fig 6{sub}  {}: pft vs time/memory (min_sup={min_sup}, scale={}{ttag})",
                        b.name(),
                        cfg.scale
                    ),
                    "pft",
                    &algos,
                    &labels,
                    cfg,
                    |algo, xi| run_probabilistic_with(algo, &db, min_sup, PFT_AXIS[xi], engine),
                );
                sweep.report(
                    cfg,
                    &format!("fig6_pft_{}{ftag}", b.name().to_lowercase()),
                    engine,
                );
            }
        }
    }

    if matches!(panel, Fig6Panel::Scalability | Fig6Panel::All) {
        let b = Benchmark::T25I15D320k;
        let d = b.defaults();
        let full = b.generate(cfg.scale, cfg.seed);
        let xs: Vec<usize> = super::fig4::SCALE_AXIS_K
            .iter()
            .map(|&k| ((k * 1000) as f64 * cfg.scale).round() as usize)
            .collect();
        let labels: Vec<String> = xs.iter().map(|&n| format!("{n}")).collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let algos = engine_algos(&APPROX_ONLY, engine);
            let sweep = Sweep::execute(
                format!(
                    "Fig 6(i)+(j)  T25I15D320k scalability (min_sup={}, pft={}, scale={}{ttag})",
                    d.min_sup, d.pft, cfg.scale
                ),
                "#trans",
                &algos,
                &labels,
                cfg,
                |algo, xi| {
                    let db = full.truncated(xs[xi]);
                    run_probabilistic_with(algo, &db, d.min_sup, d.pft, engine)
                },
            );
            sweep.report(cfg, &format!("fig6_scalability{ftag}"), engine);
        }
    }

    if matches!(panel, Fig6Panel::Zipf | Fig6Panel::All) {
        let b = Benchmark::Connect;
        let pft = b.defaults().pft;
        let labels: Vec<String> = ZIPF_SKEW_AXIS.iter().map(|&s| format!("{s}")).collect();
        let dbs: Vec<_> = ZIPF_SKEW_AXIS
            .iter()
            .map(|&skew| b.generate_with_model(cfg.scale, cfg.seed, &ProbabilityModel::zipf(skew)))
            .collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let algos = engine_algos(&APPROX_ONLY, engine);
            let sweep = Sweep::execute(
            format!(
                "Fig 6(k)+(l)  Zipf skew vs time/memory ({}, min_sup={ZIPF_MIN_SUP}, pft={pft}, scale={}{ttag})",
                b.name(),
                cfg.scale
            ),
            "skew",
            &algos,
            &labels,
            cfg,
            |algo, xi| run_probabilistic_with(algo, &dbs[xi], ZIPF_MIN_SUP, pft, engine),
        );
            sweep.report(cfg, &format!("fig6_zipf{ftag}"), engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_shapes() {
        assert_eq!(min_sup_axis(Benchmark::Accident).len(), 6);
        assert_eq!(min_sup_axis(Benchmark::Kosarak).len(), 5);
        assert_eq!(Algorithm::APPROXIMATE[0], Algorithm::DCB);
        assert_eq!(APPROX_ONLY.len(), 3);
    }
}
