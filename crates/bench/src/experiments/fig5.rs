//! **Figure 5** — performance of the exact probabilistic algorithms
//! (DPNB, DPB, DCNB, DCB).
//!
//! Sub-figures regenerated:
//! * (a)–(d) time and memory vs `min_sup` on Accident and Kosarak,
//! * (e)–(h) time and memory vs `pft`,
//! * (i)–(j) scalability on T25I15D320k,
//! * (k)–(l) Zipf skew.

use super::{engine_tag, fmt_x, Sweep};
use crate::config::HarnessConfig;
use crate::runner::run_probabilistic_with;
use ufim_data::{Benchmark, ProbabilityModel};
use ufim_miners::Algorithm;

/// `min_sup` sweeps of Fig 5(a)/(c).
pub fn min_sup_axis(b: Benchmark) -> Vec<f64> {
    match b {
        // Fig 5(a): 0.9 → 0.4.
        Benchmark::Accident => vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4],
        // Fig 5(c): 0.9 → 0.1.
        Benchmark::Kosarak => vec![0.9, 0.7, 0.5, 0.3, 0.2, 0.1],
        _ => vec![0.9, 0.7, 0.5],
    }
}

/// `pft` sweep of Fig 5(e)–(h): 0.9 → 0.1.
pub const PFT_AXIS: [f64; 5] = [0.9, 0.7, 0.5, 0.3, 0.1];

/// Zipf skew axis (same as Figure 4).
pub const ZIPF_SKEW_AXIS: [f64; 4] = [0.8, 1.2, 1.6, 2.0];

/// `min_sup` for the Zipf panels (see `fig4::ZIPF_MIN_ESUP` rationale).
pub const ZIPF_MIN_SUP: f64 = 0.05;

/// Panels of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig5Panel {
    /// (a)–(d): `min_sup` sweeps.
    MinSup,
    /// (e)–(h): `pft` sweeps.
    Pft,
    /// (i)–(j): scalability.
    Scalability,
    /// (k)–(l): Zipf skew.
    Zipf,
    /// Everything.
    All,
}

/// Runs the requested panel(s). Datasets are generated once per panel and
/// shared across the configured support backends (generation is seeded, so
/// every backend sees the identical database).
pub fn run(cfg: &HarnessConfig, panel: Fig5Panel) {
    let algos = Algorithm::EXACT_PROBABILISTIC;

    if matches!(panel, Fig5Panel::MinSup | Fig5Panel::All) {
        for (sub, b) in [
            ("(a)+(b)", Benchmark::Accident),
            ("(c)+(d)", Benchmark::Kosarak),
        ] {
            let db = b.generate(cfg.scale, cfg.seed);
            let pft = b.defaults().pft;
            let xs = min_sup_axis(b);
            let labels: Vec<String> = xs.iter().map(|&x| fmt_x(x)).collect();
            for &engine in &cfg.engines {
                let (ttag, ftag) = engine_tag(cfg, engine);
                let sweep = Sweep::execute(
                    format!(
                        "Fig 5{sub}  {}: min_sup vs time/memory (pft={pft}, N={}, scale={}{ttag})",
                        b.name(),
                        db.num_transactions(),
                        cfg.scale
                    ),
                    "min_sup",
                    &algos,
                    &labels,
                    cfg,
                    |algo, xi| run_probabilistic_with(algo, &db, xs[xi], pft, engine),
                );
                sweep.report(
                    cfg,
                    &format!("fig5_minsup_{}{ftag}", b.name().to_lowercase()),
                    engine,
                );
            }
        }
    }

    if matches!(panel, Fig5Panel::Pft | Fig5Panel::All) {
        for (sub, b) in [
            ("(e)+(f)", Benchmark::Accident),
            ("(g)+(h)", Benchmark::Kosarak),
        ] {
            let db = b.generate(cfg.scale, cfg.seed);
            let min_sup = b.defaults().min_sup;
            let labels: Vec<String> = PFT_AXIS.iter().map(|&x| fmt_x(x)).collect();
            for &engine in &cfg.engines {
                let (ttag, ftag) = engine_tag(cfg, engine);
                let sweep = Sweep::execute(
                    format!(
                        "Fig 5{sub}  {}: pft vs time/memory (min_sup={min_sup}, scale={}{ttag})",
                        b.name(),
                        cfg.scale
                    ),
                    "pft",
                    &algos,
                    &labels,
                    cfg,
                    |algo, xi| run_probabilistic_with(algo, &db, min_sup, PFT_AXIS[xi], engine),
                );
                sweep.report(
                    cfg,
                    &format!("fig5_pft_{}{ftag}", b.name().to_lowercase()),
                    engine,
                );
            }
        }
    }

    if matches!(panel, Fig5Panel::Scalability | Fig5Panel::All) {
        let b = Benchmark::T25I15D320k;
        let d = b.defaults();
        let full = b.generate(cfg.scale, cfg.seed);
        let xs: Vec<usize> = super::fig4::SCALE_AXIS_K
            .iter()
            .map(|&k| ((k * 1000) as f64 * cfg.scale).round() as usize)
            .collect();
        let labels: Vec<String> = xs.iter().map(|&n| format!("{n}")).collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let sweep = Sweep::execute(
                format!(
                    "Fig 5(i)+(j)  T25I15D320k scalability (min_sup={}, pft={}, scale={}{ttag})",
                    d.min_sup, d.pft, cfg.scale
                ),
                "#trans",
                &algos,
                &labels,
                cfg,
                |algo, xi| {
                    let db = full.truncated(xs[xi]);
                    run_probabilistic_with(algo, &db, d.min_sup, d.pft, engine)
                },
            );
            sweep.report(cfg, &format!("fig5_scalability{ftag}"), engine);
        }
    }

    if matches!(panel, Fig5Panel::Zipf | Fig5Panel::All) {
        let b = Benchmark::Connect;
        let pft = b.defaults().pft;
        let labels: Vec<String> = ZIPF_SKEW_AXIS.iter().map(|&s| format!("{s}")).collect();
        let dbs: Vec<_> = ZIPF_SKEW_AXIS
            .iter()
            .map(|&skew| b.generate_with_model(cfg.scale, cfg.seed, &ProbabilityModel::zipf(skew)))
            .collect();
        for &engine in &cfg.engines {
            let (ttag, ftag) = engine_tag(cfg, engine);
            let sweep = Sweep::execute(
            format!(
                "Fig 5(k)+(l)  Zipf skew vs time/memory ({}, min_sup={ZIPF_MIN_SUP}, pft={pft}, scale={}{ttag})",
                b.name(),
                cfg.scale
            ),
            "skew",
            &algos,
            &labels,
            cfg,
            |algo, xi| run_probabilistic_with(algo, &dbs[xi], ZIPF_MIN_SUP, pft, engine),
        );
            sweep.report(cfg, &format!("fig5_zipf{ftag}"), engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_are_monotone_harder() {
        for b in [Benchmark::Accident, Benchmark::Kosarak] {
            let ax = min_sup_axis(b);
            assert!(ax.windows(2).all(|w| w[0] > w[1]), "{}", b.name());
        }
        assert!(PFT_AXIS.windows(2).all(|w| w[0] > w[1]));
    }
}
