//! The experiment implementations, one module per paper artifact family.

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod matrix;
pub mod tables;

use crate::config::HarnessConfig;
use crate::runner::MeasuredRun;
use ufim_core::{EngineKind, FxHashSet};
use ufim_metrics::table::{fmt_mb, fmt_secs, Table};
use ufim_miners::Algorithm;

/// Title and CSV-name suffixes naming the support backend, as
/// `(title_tag, file_tag)`. Both empty for a plain default run so
/// single-engine output keeps its historical names; always present when
/// sweeping `--engine both` or a non-default backend.
pub(crate) fn engine_tag(cfg: &HarnessConfig, engine: EngineKind) -> (String, String) {
    if cfg.engines.len() == 1 && engine == EngineKind::default() {
        (String::new(), String::new())
    } else {
        (
            format!(", engine={}", engine.name()),
            format!("_{}", engine.name()),
        )
    }
}

/// The subset of `all` to run on `engine`. On the default backend every
/// miner runs (that is the paper's configuration); on any other backend
/// only miners whose support computation actually goes through the engine
/// seam are included — rerunning an engine-agnostic miner (UH-Mine,
/// UFP-growth, NDUH-Mine) and labeling its unchanged run `engine=vertical`
/// would corrupt the backend comparison.
pub(crate) fn engine_algos(all: &[Algorithm], engine: EngineKind) -> Vec<Algorithm> {
    if engine == EngineKind::default() {
        all.to_vec()
    } else {
        all.iter()
            .copied()
            .filter(|a| a.supports_engine_selection())
            .collect()
    }
}

/// One measured curve family: for each x value, one optional run per
/// algorithm (`None` = skipped after exceeding the time budget).
pub struct Sweep {
    /// Table caption, e.g. `"Fig 4(a)+(e)  Connect: min_esup vs time/memory"`.
    pub title: String,
    /// Name of the x axis (`min_esup`, `pft`, `#trans`, `skew`).
    pub x_name: String,
    /// The algorithms, in plot-legend order.
    pub algorithms: Vec<Algorithm>,
    /// `(x label, per-algorithm runs)`.
    pub points: Vec<(String, Vec<Option<MeasuredRun>>)>,
}

impl Sweep {
    /// Executes a sweep: `run(algo, x_index)` for every point × algorithm,
    /// skipping an algorithm's remaining (harder) points once one run
    /// exceeds the configured budget — the paper's cutoff rule.
    pub fn execute(
        title: impl Into<String>,
        x_name: impl Into<String>,
        algorithms: &[Algorithm],
        x_labels: &[String],
        cfg: &HarnessConfig,
        mut run: impl FnMut(Algorithm, usize) -> MeasuredRun,
    ) -> Sweep {
        let mut given_up: FxHashSet<Algorithm> = FxHashSet::default();
        let mut points = Vec::with_capacity(x_labels.len());
        for (xi, xl) in x_labels.iter().enumerate() {
            let mut runs = Vec::with_capacity(algorithms.len());
            for &algo in algorithms {
                if given_up.contains(&algo) {
                    runs.push(None);
                    continue;
                }
                let r = run(algo, xi);
                if r.time_secs > cfg.timeout.as_secs_f64() {
                    given_up.insert(algo);
                }
                runs.push(Some(r));
            }
            points.push((xl.clone(), runs));
        }
        Sweep {
            title: title.into(),
            x_name: x_name.into(),
            algorithms: algorithms.to_vec(),
            points,
        }
    }

    /// Renders the paper-figure-shaped tables (one row per x, one column
    /// pair per algorithm) and dumps CSV/JSON when configured. `engine` is
    /// the support backend this sweep ran on — recorded per run in the
    /// JSON snapshot (as `n/a` for miners outside the engine seam, which
    /// ignore the selector).
    pub fn report(&self, cfg: &HarnessConfig, csv_name: &str, engine: EngineKind) {
        println!("\n=== {} ===", self.title);
        let mut header = vec![self.x_name.clone()];
        for a in &self.algorithms {
            header.push(format!("{} time", a.name()));
            header.push(format!("{} mem", a.name()));
            if cfg.mem {
                // The auxiliary-structure peak (support-engine memo, UFP
                // tree, UH-Struct) in its own units, plus the byte-accurate
                // engine memo peak (cross-backend comparable), next to the
                // allocator-level `mem` column measure_peak always fills.
                header.push(format!("{} struct", a.name()));
                header.push(format!("{} memo", a.name()));
            }
            header.push(format!("{} #freq", a.name()));
        }
        let mut table = Table::new(header);
        for (x, runs) in &self.points {
            let mut row = vec![x.clone()];
            for r in runs {
                match r {
                    Some(m) => {
                        row.push(fmt_secs(m.time_secs));
                        row.push(fmt_mb(m.peak_bytes));
                        if cfg.mem {
                            row.push(m.stats.peak_structure_nodes.to_string());
                            row.push(fmt_mb(m.stats.peak_memo_bytes as usize));
                        }
                        row.push(m.num_itemsets.to_string());
                    }
                    None => {
                        row.push(">budget".into());
                        row.push("-".into());
                        if cfg.mem {
                            row.push("-".into());
                            row.push("-".into());
                        }
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
        }
        print!("{table}");

        // The paper's figures are log-scale line plots; render the running
        // time curves in that shape (the memory curves read fine from the
        // table).
        let mut chart = ufim_metrics::AsciiChart::new(
            format!("running time (s), log scale — {}", self.title),
            self.points.iter().map(|(x, _)| x.clone()).collect(),
        );
        for (ai, a) in self.algorithms.iter().enumerate() {
            chart.add_series(
                a.name(),
                self.points
                    .iter()
                    .map(|(_, runs)| runs[ai].as_ref().map(|m| m.time_secs))
                    .collect(),
            );
        }
        print!("{chart}");

        let mut rows = Vec::new();
        for (x, runs) in &self.points {
            for (a, r) in self.algorithms.iter().zip(runs) {
                match r {
                    Some(m) => rows.push(format!(
                        "{x},{},{:.6},{},{},{},{}",
                        a.name(),
                        m.time_secs,
                        m.peak_bytes,
                        m.stats.peak_structure_nodes,
                        m.stats.peak_memo_bytes,
                        m.num_itemsets
                    )),
                    None => rows.push(format!("{x},{},timeout,,,,", a.name())),
                }
            }
        }
        cfg.write_csv(
            csv_name,
            &format!(
                "{},algorithm,time_secs,peak_bytes,peak_structure_nodes,peak_memo_bytes,num_itemsets",
                self.x_name
            ),
            &rows,
        );

        // The machine-readable performance snapshot (`--json`): every run
        // that finished, skipped points omitted.
        let mut snapshot = crate::json::JsonSnapshot::new(csv_name, cfg.scale, cfg.seed);
        for (x, runs) in &self.points {
            for (a, r) in self.algorithms.iter().zip(runs) {
                let Some(m) = r else { continue };
                let engine_label = if a.supports_engine_selection() {
                    engine.name()
                } else {
                    "n/a" // owns its structures; the selector is ignored
                };
                let (shards_evaluated, shards_pruned) =
                    crate::json::JsonRun::shard_counters(&m.stats);
                snapshot.runs.push(crate::json::JsonRun {
                    workload: format!("{}={x}", self.x_name),
                    algorithm: a.name().to_string(),
                    engine: engine_label.to_string(),
                    wall_ms: m.time_secs * 1e3,
                    peak_bytes: m.peak_bytes as u64,
                    peak_memo_bytes: m.stats.peak_memo_bytes,
                    intersections: m.stats.intersections,
                    num_itemsets: m.num_itemsets as u64,
                    shards_evaluated,
                    shards_pruned,
                    ..Default::default()
                });
            }
        }
        cfg.write_json(&snapshot);
    }

    /// The fastest algorithm at a given point (by index), if any ran.
    pub fn winner_at(&self, point: usize) -> Option<Algorithm> {
        let (_, runs) = self.points.get(point)?;
        self.algorithms
            .iter()
            .zip(runs)
            .filter_map(|(a, r)| r.as_ref().map(|m| (*a, m.time_secs)))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .map(|(a, _)| a)
    }

    /// The most memory-frugal algorithm at a given point, if any ran.
    pub fn memory_winner_at(&self, point: usize) -> Option<Algorithm> {
        let (_, runs) = self.points.get(point)?;
        self.algorithms
            .iter()
            .zip(runs)
            .filter_map(|(a, r)| r.as_ref().map(|m| (*a, m.peak_bytes)))
            .min_by_key(|&(_, m)| m)
            .map(|(a, _)| a)
    }
}

/// Formats f64 x-axis values the way the paper labels them (trailing zeros
/// trimmed).
pub fn fmt_x(v: f64) -> String {
    if v >= 0.01 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_expected;
    use ufim_core::examples::paper_table1;

    #[test]
    fn sweep_executes_and_reports_winners() {
        let db = paper_table1();
        let cfg = HarnessConfig::default();
        let xs = vec!["0.5".to_string(), "0.25".to_string()];
        let sweep = Sweep::execute(
            "test",
            "min_esup",
            &Algorithm::EXPECTED_SUPPORT,
            &xs,
            &cfg,
            |algo, xi| {
                let x = if xi == 0 { 0.5 } else { 0.25 };
                run_expected(algo, &db, x)
            },
        );
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.winner_at(0).is_some());
        assert!(sweep.memory_winner_at(1).is_some());
        assert!(sweep.winner_at(99).is_none());
    }

    #[test]
    fn timeout_skips_later_points() {
        let db = paper_table1();
        let cfg = HarnessConfig {
            timeout: std::time::Duration::from_secs(0),
            ..Default::default()
        };
        let xs: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let sweep = Sweep::execute("t", "x", &[Algorithm::UApriori], &xs, &cfg, |algo, _| {
            run_expected(algo, &db, 0.5)
        });
        // First point ran (then tripped the 0-second budget), second skipped.
        assert!(sweep.points[0].1[0].is_some());
        assert!(sweep.points[1].1[0].is_none());
    }

    #[test]
    fn fmt_x_trims() {
        assert_eq!(fmt_x(0.5), "0.5");
        assert_eq!(fmt_x(0.0005), "5e-4");
    }
}
