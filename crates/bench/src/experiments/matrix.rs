//! **Matrix** — the measure × traversal × engine grid that the paper's
//! Table 10 only samples eight cells of.
//!
//! Runs every buildable [`MatrixMiner`] cell on one benchmark database and
//! prints a grid of running time / peak memory / result size, one row per
//! measure and one column group per traversal. The level-wise column
//! honours `--engine` (including `both`); the depth-first traversals own
//! their structures and run once. Cells occupied by a named paper
//! algorithm are annotated with its name; the rest are the combinations
//! this codebase newly unlocks (exact-DP/DC on UH-Mine, Poisson/Normal on
//! UFP-growth, Poisson on UH-Mine).
//!
//! Because every cell of a row judges by the *same* measure, their result
//! counts must agree — the report flags any row where they do not, which
//! makes this experiment double as a cheap cross-traversal consistency
//! check on real generated data.

use crate::config::HarnessConfig;
use crate::runner::run_matrix;
use ufim_core::{MeasureKind, TraversalKind};
use ufim_data::Benchmark;
use ufim_metrics::table::{fmt_mb, fmt_secs, Table};
use ufim_miners::{Algorithm, MatrixMiner};

/// Runs the matrix experiment, restricted to the selected axes (`None`
/// means "all of them").
pub fn run(
    cfg: &HarnessConfig,
    measure_filter: Option<MeasureKind>,
    traversal_filter: Option<TraversalKind>,
) {
    let b = Benchmark::Accident;
    let d = b.defaults();
    let db = b.generate(cfg.scale, cfg.seed);
    let measures: Vec<MeasureKind> = MeasureKind::ALL
        .into_iter()
        .filter(|m| measure_filter.is_none_or(|f| f == *m))
        .collect();
    let traversals: Vec<TraversalKind> = TraversalKind::ALL
        .into_iter()
        .filter(|t| traversal_filter.is_none_or(|f| f == *t))
        .collect();

    for &engine in &cfg.engines {
        println!(
            "\n=== Matrix  {}: measure × traversal grid (min_sup={}, pft={}, N={}, scale={}, engine={}) ===",
            b.name(),
            d.min_sup,
            d.pft,
            db.num_transactions(),
            cfg.scale,
            engine.name(),
        );
        let mut header = vec!["measure".to_string()];
        for t in &traversals {
            header.push(format!("{t} time"));
            header.push(format!("{t} mem"));
            if cfg.mem {
                header.push(format!("{t} struct"));
                header.push(format!("{t} memo"));
            }
            header.push(format!("{t} #freq"));
        }
        let mut table = Table::new(header);
        let mut csv_rows = Vec::new();
        let mut inconsistent = Vec::new();
        let mut snapshot = crate::json::JsonSnapshot::new(
            format!("matrix_{}", engine.name()),
            cfg.scale,
            cfg.seed,
        );

        for &measure in &measures {
            let mut row = vec![measure.name().to_string()];
            let mut counts: Vec<usize> = Vec::new();
            for &traversal in &traversals {
                if !MatrixMiner::supported(measure, traversal) {
                    row.extend(["—".into(), "—".into(), "—".into()]);
                    if cfg.mem {
                        row.extend(["—".into(), "—".into()]);
                    }
                    continue;
                }
                // Depth-first traversals own their structures and ignore
                // the engine selector; measure them once (under the first
                // configured engine) and mark the repeats, so an
                // `--engine both` sweep never mislabels identical runs.
                if traversal != TraversalKind::LevelWise && engine != cfg.engines[0] {
                    row.extend(["(=)".into(), "(=)".into(), "(=)".into()]);
                    if cfg.mem {
                        row.extend(["(=)".into(), "(=)".into()]);
                    }
                    continue;
                }
                let cell = MatrixMiner::new(measure, traversal);
                let m = run_matrix(cell, &db, d.min_sup, d.pft, engine);
                counts.push(m.num_itemsets);
                let tag = match Algorithm::from_cell(measure, traversal) {
                    Some(a) => format!(" [{}]", a.name()),
                    None => " [new]".to_string(),
                };
                row.push(format!("{}{tag}", fmt_secs(m.time_secs)));
                row.push(fmt_mb(m.peak_bytes));
                if cfg.mem {
                    // Structure units (within-backend) and engine memo
                    // bytes (cross-backend comparable): memo units on
                    // level-wise cells, UFP-tree nodes / UH-Struct cells
                    // on the depth-first traversals (memo reads 0 there).
                    row.push(m.stats.peak_structure_nodes.to_string());
                    row.push(fmt_mb(m.stats.peak_memo_bytes as usize));
                }
                row.push(m.num_itemsets.to_string());
                // Depth-first rows carry "n/a" — they never touch the
                // engine seam, whatever the sweep configuration.
                let engine_label = if traversal == TraversalKind::LevelWise {
                    engine.name()
                } else {
                    "n/a"
                };
                csv_rows.push(format!(
                    "{},{},{engine_label},{:.6},{},{},{},{}",
                    measure.name(),
                    traversal.name(),
                    m.time_secs,
                    m.peak_bytes,
                    m.stats.peak_structure_nodes,
                    m.stats.peak_memo_bytes,
                    m.num_itemsets
                ));
                let (shards_evaluated, shards_pruned) =
                    crate::json::JsonRun::shard_counters(&m.stats);
                snapshot.runs.push(crate::json::JsonRun {
                    workload: format!("{}@scale={}", b.name(), cfg.scale),
                    algorithm: format!("{}×{}", measure.name(), traversal.name()),
                    engine: engine_label.to_string(),
                    wall_ms: m.time_secs * 1e3,
                    peak_bytes: m.peak_bytes as u64,
                    peak_memo_bytes: m.stats.peak_memo_bytes,
                    intersections: m.stats.intersections,
                    num_itemsets: m.num_itemsets as u64,
                    shards_evaluated,
                    shards_pruned,
                    ..Default::default()
                });
            }
            counts.dedup();
            if counts.len() > 1 {
                inconsistent.push(measure);
            }
            table.row(row);
        }
        print!("{table}");
        if inconsistent.is_empty() {
            println!("every traversal of a measure found the same number of itemsets ✓");
        } else {
            for m in inconsistent {
                println!("WARNING: traversals of measure {m} disagree on the result size");
            }
        }
        cfg.write_csv(
            &format!("matrix_{}", engine.name()),
            "measure,traversal,engine,time_secs,peak_bytes,peak_structure_nodes,peak_memo_bytes,num_itemsets",
            &csv_rows,
        );
        cfg.write_json(&snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_experiment_runs_at_tiny_scale() {
        let cfg = HarnessConfig {
            scale: 0.001,
            ..Default::default()
        };
        // Smoke: the full grid on a tiny Accident analog must not panic.
        run(&cfg, None, None);
        // And a filtered slice.
        run(
            &cfg,
            Some(MeasureKind::Poisson),
            Some(TraversalKind::TreeGrowth),
        );
        // The diffset backend with the structure-memory column engaged.
        let cfg = HarnessConfig {
            scale: 0.001,
            mem: true,
            engines: vec![ufim_core::EngineKind::Diffset],
            ..Default::default()
        };
        run(&cfg, Some(MeasureKind::ExpectedSupport), None);
    }
}
