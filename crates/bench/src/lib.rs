//! # ufim-bench
//!
//! Experiment harness regenerating **every table and figure** of the
//! evaluation section of Tong et al. (VLDB 2012). The binary `ufim-bench`
//! exposes one subcommand per artifact:
//!
//! | subcommand | paper artifact |
//! |---|---|
//! | `table1` | Table 1/2 worked example (Examples 1–2) |
//! | `table6` | dataset characteristics |
//! | `table7` | default parameters |
//! | `fig4`   | expected-support miners: time/memory vs `min_esup`, scalability, Zipf |
//! | `fig5`   | exact probabilistic miners: vs `min_sup`, vs `pft`, scalability, Zipf |
//! | `fig6`   | approximate miners: vs `min_sup`, vs `pft`, scalability, Zipf |
//! | `table8` | precision/recall on Accident |
//! | `table9` | precision/recall on Kosarak |
//! | `table10`| winner summary grid (derived from fresh measurements) |
//! | `all`    | everything above in paper order |
//!
//! Every subcommand accepts `--scale` (fraction of the paper's transaction
//! counts; default 0.01 so the full suite completes on a laptop in minutes),
//! `--seed`, `--timeout-secs` (per-point cutoff mirroring the paper's "we do
//! not report the running time over 1 hour"), `--csv DIR` to dump
//! machine-readable series next to the printed tables, and `--json DIR` to
//! write `BENCH_<experiment>.json` performance snapshots (validated by the
//! `json-check` subcommand; see [`json`]).
//!
//! ## Memory accounting
//!
//! Memory numbers come from the [`ufim_metrics::CountingAllocator`]
//! installed as the binary's global allocator: every measured run goes
//! through `ufim_metrics::alloc::measure_peak`, whose peak-heap delta is
//! the `mem` column of every report and the `peak_bytes` CSV column. Two
//! complementary instruments refine that process-level number:
//!
//! * `--mem` adds two per-run columns: the *auxiliary-structure* peak
//!   (`MinerStats::peak_structure_nodes`, in the structure's own units)
//!   and the byte-accurate engine memo peak
//!   (`MinerStats::peak_memo_bytes`), which is exactly where the
//!   `--engine vertical` and `--engine diffset` backends differ and the
//!   number to compare across them;
//! * the Criterion harness `benches/bench_memory.rs` compares the
//!   backends' allocator-level and memo-level peaks head to head on a
//!   dense workload (the diffset backend's target regime).
//!
//! Criterion benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod json;
pub mod runner;

pub use config::HarnessConfig;
pub use runner::{run_expected, run_matrix, run_probabilistic, MeasuredRun};
