//! Harness configuration and CLI parsing (hand-rolled; the sanctioned
//! dependency list has no argument parser, and the surface is small).

use std::path::PathBuf;
use std::time::Duration;
use ufim_core::EngineKind;

/// Configuration shared by all experiment subcommands.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Fraction of the paper's transaction counts to generate, in `(0, 1]`.
    pub scale: f64,
    /// Master RNG seed (generators and probability assignment derive from
    /// it deterministically).
    pub seed: u64,
    /// Per-point time budget. When one sweep point exceeds it, the
    /// remaining (strictly harder) points for that algorithm are skipped
    /// and reported as `>budget` — the analog of the paper's 1-hour cutoff.
    pub timeout: Duration,
    /// Directory for CSV dumps (`None` = print only).
    pub csv_dir: Option<PathBuf>,
    /// Directory for `BENCH_<experiment>.json` performance snapshots
    /// (`None` = none written). See [`crate::json`].
    pub json_dir: Option<PathBuf>,
    /// Support-computation backends to sweep. Every figure experiment runs
    /// once per entry, so `--engine both` (or `all`) produces the
    /// apples-to-apples backend comparison directly.
    pub engines: Vec<EngineKind>,
    /// Add the auxiliary-structure peak column (`MinerStats::
    /// peak_structure_nodes` — the support engine's memo footprint on
    /// level-wise runs) next to the allocator-level `mem` column that
    /// `ufim_metrics::alloc::measure_peak` always provides.
    pub mem: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.01,
            seed: 42,
            timeout: Duration::from_secs(60),
            csv_dir: None,
            json_dir: None,
            engines: vec![EngineKind::default()],
            mem: false,
        }
    }
}

impl HarnessConfig {
    /// Parses `--scale X --seed N --timeout-secs S --csv DIR` style flags
    /// from an argument list, returning the config and unconsumed args.
    ///
    /// # Errors
    /// Returns a message suitable for printing on malformed input.
    pub fn parse(args: &[String]) -> Result<(Self, Vec<String>), String> {
        let mut cfg = HarnessConfig::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    cfg.scale = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad --scale value {v:?}"))?;
                    if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
                        return Err(format!("--scale must be in (0,1], got {}", cfg.scale));
                    }
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cfg.seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad --seed value {v:?}"))?;
                }
                "--timeout-secs" => {
                    let v = it.next().ok_or("--timeout-secs needs a value")?;
                    let secs = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad --timeout-secs value {v:?}"))?;
                    cfg.timeout = Duration::from_secs(secs);
                }
                "--csv" => {
                    let v = it.next().ok_or("--csv needs a directory")?;
                    cfg.csv_dir = Some(PathBuf::from(v));
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a directory")?;
                    cfg.json_dir = Some(PathBuf::from(v));
                }
                "--engine" => {
                    let v = it.next().ok_or("--engine needs a value")?;
                    cfg.engines = if v.eq_ignore_ascii_case("both") || v.eq_ignore_ascii_case("all")
                    {
                        EngineKind::ALL.to_vec()
                    } else {
                        vec![EngineKind::parse(v).ok_or_else(|| {
                            format!(
                                "bad --engine value {v:?} (horizontal|vertical|diffset|both|all)"
                            )
                        })?]
                    };
                }
                "--mem" => cfg.mem = true,
                other => rest.push(other.to_string()),
            }
        }
        Ok((cfg, rest))
    }

    /// Writes one `BENCH_<experiment>.json` snapshot if `--json` was
    /// given. Like [`HarnessConfig::write_csv`], failures warn but never
    /// abort an experiment.
    pub fn write_json(&self, snapshot: &crate::json::JsonSnapshot) {
        if let Some(dir) = &self.json_dir {
            if let Some(path) = snapshot.write(dir) {
                println!("wrote {}", path.display());
            }
        }
    }

    /// Writes one CSV series if `--csv` was given. Errors are reported to
    /// stderr but never abort an experiment (losing a dump should not lose
    /// the run).
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let (cfg, rest) = HarnessConfig::parse(&[]).unwrap();
        assert_eq!(cfg.scale, 0.01);
        assert_eq!(cfg.seed, 42);
        assert!(rest.is_empty());
    }

    #[test]
    fn parses_flags_and_passes_rest() {
        let (cfg, rest) = HarnessConfig::parse(&argv(&[
            "fig4",
            "--scale",
            "0.1",
            "--seed",
            "7",
            "--timeout-secs",
            "5",
            "--panel",
            "scale",
        ]))
        .unwrap();
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.timeout, Duration::from_secs(5));
        assert_eq!(rest, argv(&["fig4", "--panel", "scale"]));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(HarnessConfig::parse(&argv(&["--scale", "0"])).is_err());
        assert!(HarnessConfig::parse(&argv(&["--scale", "abc"])).is_err());
        assert!(HarnessConfig::parse(&argv(&["--seed"])).is_err());
        assert!(HarnessConfig::parse(&argv(&["--engine", "sideways"])).is_err());
    }

    #[test]
    fn parses_engine_selection() {
        use ufim_core::EngineKind;
        let (cfg, _) = HarnessConfig::parse(&[]).unwrap();
        assert_eq!(cfg.engines, vec![EngineKind::Horizontal]);
        let (cfg, _) = HarnessConfig::parse(&argv(&["--engine", "vertical"])).unwrap();
        assert_eq!(cfg.engines, vec![EngineKind::Vertical]);
        let (cfg, _) = HarnessConfig::parse(&argv(&["--engine", "diffset"])).unwrap();
        assert_eq!(cfg.engines, vec![EngineKind::Diffset]);
        for sweep in ["both", "all"] {
            let (cfg, _) = HarnessConfig::parse(&argv(&["--engine", sweep])).unwrap();
            assert_eq!(cfg.engines, EngineKind::ALL.to_vec());
        }
    }

    #[test]
    fn parses_json_flag() {
        let (cfg, _) = HarnessConfig::parse(&[]).unwrap();
        assert!(cfg.json_dir.is_none());
        let (cfg, rest) = HarnessConfig::parse(&argv(&["fig4", "--json", "out"])).unwrap();
        assert_eq!(cfg.json_dir.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(rest, argv(&["fig4"]));
        assert!(HarnessConfig::parse(&argv(&["--json"])).is_err());
    }

    #[test]
    fn parses_mem_flag() {
        let (cfg, _) = HarnessConfig::parse(&[]).unwrap();
        assert!(!cfg.mem);
        let (cfg, rest) = HarnessConfig::parse(&argv(&["matrix", "--mem"])).unwrap();
        assert!(cfg.mem);
        assert_eq!(rest, argv(&["matrix"]));
    }

    #[test]
    fn csv_writes_when_configured() {
        let dir = std::env::temp_dir().join(format!("ufim-bench-test-{}", std::process::id()));
        let cfg = HarnessConfig {
            csv_dir: Some(dir.clone()),
            ..Default::default()
        };
        cfg.write_csv("t", "a,b", &["1,2".to_string()]);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
