//! Machine-readable `BENCH_<experiment>.json` performance snapshots.
//!
//! Every experiment can dump its measured runs as one JSON file per
//! experiment (`--json DIR`), so the repo's performance trajectory is
//! diffable across PRs: a snapshot records the workload label, wall-clock
//! milliseconds, allocator peak, engine-memo peak and intersection count
//! of every run, plus the configuration that produced them (scale, seed,
//! thread cap). `crates/bench/baselines/` keeps checked-in snapshots from
//! past PRs as the comparison anchor.
//!
//! The sanctioned dependency set has no serde, so this module hand-rolls
//! the (tiny) writer and a strict reader. The reader is a real JSON
//! parser — `ufim-bench json-check` uses it in CI to prove the emitted
//! snapshots are actually machine-readable, not just string-shaped.
//!
//! ## The regression gate
//!
//! `ufim-bench json-compare BASELINE FRESH [--tolerance-pct P]`
//! ([`compare_paths`]) turns the snapshots into an actual CI gate:
//!
//! * **strict** (build-failing): the experiment identity (name, scale,
//!   seed), the run list's shape (count, workload/algorithm/engine
//!   labels, order) and the deterministic counters — `intersections` and
//!   `num_itemsets` — must match the baseline exactly. These are
//!   bit-identical across machines and pool sizes by the workspace's
//!   determinism guarantee, so *any* drift is a real behavioral change.
//! * **advisory** (warning only): `wall_ms` drift beyond the tolerance
//!   and `peak_memo_bytes` changes. Timing depends on the host; memory
//!   policy may legitimately change — both are surfaced, neither fails
//!   the build.
//! * **advisory by construction**: counter fields added after a baseline
//!   was recorded (the `shards_evaluated` / `shards_pruned` pair from the
//!   sharded support engines, the border/memo counters from incremental
//!   runs, and the `memo_hits` / `memo_extends` pair plus the
//!   `latency_*_ms` / `qps` percentiles from the query server) parse as
//!   optional and never fail strictly — a drift or a presence mismatch
//!   against an older baseline only warns. The gate would otherwise force
//!   a baseline refresh on every run the moment a new counter ships,
//!   defeating the point of keeping old snapshots comparable.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One measured run inside a snapshot. `Default` gives every label empty,
/// every measurement zero and every optional counter absent — experiment
/// code fills what it measures and leaves the rest via `..Default::default()`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsonRun {
    /// Workload label — the x-axis point of the sweep (e.g. `min_esup=0.5`)
    /// or a dataset tag.
    pub workload: String,
    /// Algorithm (or matrix-cell) name.
    pub algorithm: String,
    /// Support backend, `n/a` for miners outside the engine seam.
    pub engine: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Allocator-level peak heap growth in bytes (0 without the counting
    /// allocator).
    pub peak_bytes: u64,
    /// Engine memo peak in bytes ([`ufim_core::MinerStats::peak_memo_bytes`]).
    pub peak_memo_bytes: u64,
    /// Tid-list intersections performed
    /// ([`ufim_core::MinerStats::intersections`]).
    pub intersections: u64,
    /// Number of frequent itemsets found.
    pub num_itemsets: u64,
    /// Shard evaluations performed by a sharded support engine
    /// ([`ufim_core::MinerStats::shards_evaluated`]). `None` in snapshots
    /// written before the field existed, and omitted from unsharded runs —
    /// newly-added counters stay **advisory** in the gate so older
    /// baselines keep passing (see the module docs).
    pub shards_evaluated: Option<u64>,
    /// Shard evaluations skipped by zone maps or emptiness
    /// ([`ufim_core::MinerStats::shards_pruned`]); optional like
    /// [`shards_evaluated`](Self::shards_evaluated).
    pub shards_pruned: Option<u64>,
    /// Border-tracker entries invalidated and re-evaluated by an
    /// incremental run ([`ufim_core::MinerStats::border_rejudged`]);
    /// `None` outside incremental (streaming) runs. Advisory in the gate
    /// like the shard counters.
    pub border_rejudged: Option<u64>,
    /// Border-tracker entries reused without re-evaluation
    /// ([`ufim_core::MinerStats::border_skipped`]); optional like
    /// [`border_rejudged`](Self::border_rejudged).
    pub border_skipped: Option<u64>,
    /// Retained memo nodes point-updated in place by a window step
    /// ([`ufim_core::MinerStats::memo_patched`]); `None` outside
    /// incremental (streaming) runs. Advisory in the gate like the
    /// border counters.
    pub memo_patched: Option<u64>,
    /// Retained memo nodes whose delta was too dense to patch, rebuilt
    /// from scratch instead ([`ufim_core::MinerStats::memo_rebuilt`]);
    /// optional like [`memo_patched`](Self::memo_patched).
    pub memo_rebuilt: Option<u64>,
    /// Queries the serve-layer resident memo answered warm (no mining);
    /// `None` outside `bench_serve` runs. Advisory in the gate like the
    /// shard counters.
    pub memo_hits: Option<u64>,
    /// Queries that extended a resident memo cell downward to a lower
    /// threshold (re-mined, replacing the basis); optional like
    /// [`memo_hits`](Self::memo_hits).
    pub memo_extends: Option<u64>,
    /// Median per-request latency in milliseconds; `None` outside
    /// `bench_serve` runs. Timing-derived, so advisory like `wall_ms`.
    pub latency_p50_ms: Option<f64>,
    /// 95th-percentile per-request latency in milliseconds; optional like
    /// [`latency_p50_ms`](Self::latency_p50_ms).
    pub latency_p95_ms: Option<f64>,
    /// 99th-percentile per-request latency in milliseconds; optional like
    /// [`latency_p50_ms`](Self::latency_p50_ms).
    pub latency_p99_ms: Option<f64>,
    /// Sustained queries per second over the measured window; optional
    /// like [`latency_p50_ms`](Self::latency_p50_ms).
    pub qps: Option<f64>,
}

impl JsonRun {
    /// Derives the optional shard counters from a run's [`MinerStats`]:
    /// `Some` only when the sharded support path actually engaged (either
    /// counter nonzero), so unsharded runs keep emitting the pre-shard
    /// snapshot format byte for byte.
    ///
    /// [`MinerStats`]: ufim_core::MinerStats
    pub fn shard_counters(stats: &ufim_core::MinerStats) -> (Option<u64>, Option<u64>) {
        let engaged = stats.shards_evaluated + stats.shards_pruned > 0;
        (
            engaged.then_some(stats.shards_evaluated),
            engaged.then_some(stats.shards_pruned),
        )
    }
}

/// One experiment's snapshot: configuration + measured runs.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonSnapshot {
    /// Experiment name (becomes the `BENCH_<experiment>.json` file name).
    pub experiment: String,
    /// `--scale` the runs used.
    pub scale: f64,
    /// `--seed` the runs used.
    pub seed: u64,
    /// Worker-thread cap the runs used
    /// ([`ufim_core::parallel::max_threads`]).
    pub threads: u64,
    /// The measured runs, in execution order.
    pub runs: Vec<JsonRun>,
}

impl JsonSnapshot {
    /// An empty snapshot for `experiment` under the current configuration.
    pub fn new(experiment: impl Into<String>, scale: f64, seed: u64) -> Self {
        JsonSnapshot {
            experiment: experiment.into(),
            scale,
            seed,
            threads: ufim_core::parallel::max_threads() as u64,
            runs: Vec::new(),
        }
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.runs.len() * 192);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"experiment\": {},", quote(&self.experiment));
        let _ = writeln!(s, "  \"scale\": {},", fmt_f64(self.scale));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        s.push_str("  \"runs\": [");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(
                s,
                "\"workload\": {}, \"algorithm\": {}, \"engine\": {}, \
                 \"wall_ms\": {}, \"peak_bytes\": {}, \"peak_memo_bytes\": {}, \
                 \"intersections\": {}, \"num_itemsets\": {}",
                quote(&r.workload),
                quote(&r.algorithm),
                quote(&r.engine),
                fmt_f64(r.wall_ms),
                r.peak_bytes,
                r.peak_memo_bytes,
                r.intersections,
                r.num_itemsets
            );
            for (name, v) in [
                ("shards_evaluated", r.shards_evaluated),
                ("shards_pruned", r.shards_pruned),
                ("border_rejudged", r.border_rejudged),
                ("border_skipped", r.border_skipped),
                ("memo_patched", r.memo_patched),
                ("memo_rebuilt", r.memo_rebuilt),
                ("memo_hits", r.memo_hits),
                ("memo_extends", r.memo_extends),
            ] {
                if let Some(n) = v {
                    let _ = write!(s, ", \"{name}\": {n}");
                }
            }
            for (name, v) in [
                ("latency_p50_ms", r.latency_p50_ms),
                ("latency_p95_ms", r.latency_p95_ms),
                ("latency_p99_ms", r.latency_p99_ms),
                ("qps", r.qps),
            ] {
                if let Some(x) = v {
                    let _ = write!(s, ", \"{name}\": {}", fmt_f64(x));
                }
            }
            s.push('}');
        }
        if !self.runs.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Writes `BENCH_<experiment>.json` into `dir` (created if needed).
    /// Errors are reported to stderr but never abort an experiment, like
    /// the CSV writer.
    pub fn write(&self, dir: &Path) -> Option<PathBuf> {
        if self.runs.is_empty() {
            return None;
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Parses and validates a snapshot produced by [`JsonSnapshot::write`].
    ///
    /// # Errors
    /// A message naming the malformed construct (JSON syntax, a missing or
    /// mistyped field) — suitable for printing from `json-check`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let (value, rest) = Value::parse(text.trim_start())?;
        if !rest.trim_start().is_empty() {
            return Err("trailing content after the top-level object".into());
        }
        let top = value.object("top level")?;
        let runs_value = top_field(&top, "runs")?;
        let mut runs = Vec::new();
        for (i, rv) in runs_value.array("runs")?.iter().enumerate() {
            let r = rv.object(&format!("runs[{i}]"))?;
            runs.push(JsonRun {
                workload: top_field(&r, "workload")?.string("workload")?,
                algorithm: top_field(&r, "algorithm")?.string("algorithm")?,
                engine: top_field(&r, "engine")?.string("engine")?,
                wall_ms: top_field(&r, "wall_ms")?.number("wall_ms")?,
                peak_bytes: top_field(&r, "peak_bytes")?.unsigned("peak_bytes")?,
                peak_memo_bytes: top_field(&r, "peak_memo_bytes")?.unsigned("peak_memo_bytes")?,
                intersections: top_field(&r, "intersections")?.unsigned("intersections")?,
                num_itemsets: top_field(&r, "num_itemsets")?.unsigned("num_itemsets")?,
                shards_evaluated: opt_field(&r, "shards_evaluated")?,
                shards_pruned: opt_field(&r, "shards_pruned")?,
                border_rejudged: opt_field(&r, "border_rejudged")?,
                border_skipped: opt_field(&r, "border_skipped")?,
                memo_patched: opt_field(&r, "memo_patched")?,
                memo_rebuilt: opt_field(&r, "memo_rebuilt")?,
                memo_hits: opt_field(&r, "memo_hits")?,
                memo_extends: opt_field(&r, "memo_extends")?,
                latency_p50_ms: opt_float(&r, "latency_p50_ms")?,
                latency_p95_ms: opt_float(&r, "latency_p95_ms")?,
                latency_p99_ms: opt_float(&r, "latency_p99_ms")?,
                qps: opt_float(&r, "qps")?,
            });
        }
        Ok(JsonSnapshot {
            experiment: top_field(&top, "experiment")?.string("experiment")?,
            scale: top_field(&top, "scale")?.number("scale")?,
            seed: top_field(&top, "seed")?.unsigned("seed")?,
            threads: top_field(&top, "threads")?.unsigned("threads")?,
            runs,
        })
    }
}

/// Validates one snapshot file, returning a one-line summary.
///
/// # Errors
/// Propagates I/O and [`JsonSnapshot::from_json`] failures with the path
/// prepended.
pub fn check_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let snap = JsonSnapshot::from_json(&text)
        .map_err(|e| format!("{}: invalid snapshot: {e}", path.display()))?;
    Ok(format!(
        "{}: ok — experiment {:?}, {} runs, scale {}, threads {}",
        path.display(),
        snap.experiment,
        snap.runs.len(),
        snap.scale,
        snap.threads,
    ))
}

/// Validates a path: one `BENCH_*.json` file, or a directory of them
/// (at least one required).
///
/// # Errors
/// The first file-level failure, or a complaint about an empty directory.
pub fn check_path(path: &Path) -> Result<Vec<String>, String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: cannot read dir: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(format!(
                "{}: no BENCH_*.json snapshots found",
                path.display()
            ));
        }
        entries.iter().map(|p| check_file(p)).collect()
    } else {
        Ok(vec![check_file(path)?])
    }
}

/// Default `--tolerance-pct` for [`compare_paths`]: wall-clock drift
/// within ±this percentage of the baseline never warns. Generous because
/// baselines are recorded on whatever machine produced the PR while the
/// gate usually runs on CI hardware.
pub const DEFAULT_TOLERANCE_PCT: f64 = 200.0;

/// Absolute wall-clock floor below which drift never warns: sub-
/// millisecond runs are dominated by scheduling noise, not regressions.
const WALL_MS_NOISE_FLOOR: f64 = 0.5;

/// Outcome of one [`compare_paths`] invocation.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// One confirmation line per compared snapshot pair.
    pub lines: Vec<String>,
    /// Advisory drift (time beyond tolerance, memo-byte changes).
    pub warnings: Vec<String>,
    /// Strict mismatches — the caller should fail the build on any.
    pub failures: Vec<String>,
}

impl CompareReport {
    /// True when no strict mismatch was found (warnings allowed).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares one fresh snapshot against its baseline (see the module docs
/// for what is strict and what is advisory), appending to `report`.
fn compare_snapshots(
    name: &str,
    base: &JsonSnapshot,
    fresh: &JsonSnapshot,
    tolerance_pct: f64,
    report: &mut CompareReport,
) {
    let failures_before = report.failures.len();
    let fail =
        |report: &mut CompareReport, msg: String| report.failures.push(format!("{name}: {msg}"));
    if base.experiment != fresh.experiment {
        fail(
            report,
            format!(
                "experiment {:?} vs baseline {:?}",
                fresh.experiment, base.experiment
            ),
        );
    }
    if base.scale != fresh.scale {
        fail(
            report,
            format!("scale {} vs baseline {}", fresh.scale, base.scale),
        );
    }
    if base.seed != fresh.seed {
        fail(
            report,
            format!("seed {} vs baseline {}", fresh.seed, base.seed),
        );
    }
    if base.runs.len() != fresh.runs.len() {
        fail(
            report,
            format!("{} runs vs baseline {}", fresh.runs.len(), base.runs.len()),
        );
        return; // per-run comparison would misalign
    }
    let mut warned_time = 0usize;
    for (i, (b, f)) in base.runs.iter().zip(&fresh.runs).enumerate() {
        let run = format!("run[{i}] ({} / {} / {})", b.workload, b.algorithm, b.engine);
        if (&f.workload, &f.algorithm, &f.engine) != (&b.workload, &b.algorithm, &b.engine) {
            fail(
                report,
                format!(
                    "{run}: labels changed to ({} / {} / {})",
                    f.workload, f.algorithm, f.engine
                ),
            );
            continue;
        }
        if f.intersections != b.intersections {
            fail(
                report,
                format!(
                    "{run}: intersections {} vs baseline {}",
                    f.intersections, b.intersections
                ),
            );
        }
        if f.num_itemsets != b.num_itemsets {
            fail(
                report,
                format!(
                    "{run}: num_itemsets {} vs baseline {}",
                    f.num_itemsets, b.num_itemsets
                ),
            );
        }
        if f.peak_memo_bytes != b.peak_memo_bytes {
            report.warnings.push(format!(
                "{name}: {run}: peak_memo_bytes {} vs baseline {} (memory drift, advisory)",
                f.peak_memo_bytes, b.peak_memo_bytes
            ));
        }
        // Newly-added counters: advisory whatever happens, including one
        // side missing the field entirely (older baseline or a run that
        // left sharding off).
        for (field, fv, bv) in [
            ("shards_evaluated", f.shards_evaluated, b.shards_evaluated),
            ("shards_pruned", f.shards_pruned, b.shards_pruned),
            ("border_rejudged", f.border_rejudged, b.border_rejudged),
            ("border_skipped", f.border_skipped, b.border_skipped),
            ("memo_patched", f.memo_patched, b.memo_patched),
            ("memo_rebuilt", f.memo_rebuilt, b.memo_rebuilt),
            ("memo_hits", f.memo_hits, b.memo_hits),
            ("memo_extends", f.memo_extends, b.memo_extends),
        ] {
            if fv != bv {
                let show = |v: Option<u64>| v.map_or("absent".into(), |n| n.to_string());
                report.warnings.push(format!(
                    "{name}: {run}: {field} {} vs baseline {} (new counter, advisory)",
                    show(fv),
                    show(bv)
                ));
            }
        }
        // Serve-layer latency percentiles and throughput: timing-derived,
        // so advisory like `wall_ms` — tolerance-gated when both sides
        // have them, presence mismatches (pre-serve baselines) only warn.
        for (field, fv, bv) in [
            ("latency_p50_ms", f.latency_p50_ms, b.latency_p50_ms),
            ("latency_p95_ms", f.latency_p95_ms, b.latency_p95_ms),
            ("latency_p99_ms", f.latency_p99_ms, b.latency_p99_ms),
            ("qps", f.qps, b.qps),
        ] {
            match (fv, bv) {
                (Some(fv), Some(bv)) => {
                    let drift = (fv - bv).abs();
                    if drift > bv.abs() * tolerance_pct / 100.0 && drift > WALL_MS_NOISE_FLOOR {
                        report.warnings.push(format!(
                            "{name}: {run}: {field} {fv:.3} vs baseline {bv:.3} \
                             (beyond ±{tolerance_pct}% tolerance, advisory)"
                        ));
                    }
                }
                (None, None) => {}
                (fv, bv) => {
                    let show = |v: Option<f64>| v.map_or("absent".into(), |x| format!("{x:.3}"));
                    report.warnings.push(format!(
                        "{name}: {run}: {field} {} vs baseline {} (new field, advisory)",
                        show(fv),
                        show(bv)
                    ));
                }
            }
        }
        // Wall-clock: advisory, tolerance-gated, noise-floored.
        let drift = (f.wall_ms - b.wall_ms).abs();
        let allowed = b.wall_ms * tolerance_pct / 100.0;
        if drift > allowed && drift > WALL_MS_NOISE_FLOOR {
            warned_time += 1;
            let direction = if f.wall_ms > b.wall_ms {
                "slower"
            } else {
                "faster"
            };
            report.warnings.push(format!(
                "{name}: {run}: wall_ms {:.3} vs baseline {:.3} ({direction} than ±{tolerance_pct}% tolerance)",
                f.wall_ms, b.wall_ms
            ));
        }
    }
    if report.failures.len() == failures_before {
        report.lines.push(format!(
            "{name}: counters match baseline ({} runs, {} time warnings)",
            base.runs.len(),
            warned_time
        ));
    }
}

/// Runs the bench-regression gate: every `BENCH_*.json` under `baseline`
/// must have a fresh counterpart under `fresh` whose deterministic
/// counters match exactly; wall-clock drift beyond `tolerance_pct` only
/// warns. Both paths may be a single snapshot file or a directory of
/// them. Fresh-only snapshots are advisory (baselines lag new
/// experiments by design).
///
/// # Errors
/// I/O or parse failures on either side, with the path named.
pub fn compare_paths(
    baseline: &Path,
    fresh: &Path,
    tolerance_pct: f64,
) -> Result<CompareReport, String> {
    let base_files = snapshot_files(baseline)?;
    let fresh_files = snapshot_files(fresh)?;
    let mut report = CompareReport::default();
    for base_path in &base_files {
        let file_name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let Some(fresh_path) = fresh_files
            .iter()
            .find(|p| p.file_name().and_then(|n| n.to_str()) == Some(file_name.as_str()))
        else {
            report
                .failures
                .push(format!("{file_name}: baseline has no fresh counterpart"));
            continue;
        };
        let base = load_snapshot(base_path)?;
        let fresh = load_snapshot(fresh_path)?;
        compare_snapshots(&file_name, &base, &fresh, tolerance_pct, &mut report);
    }
    for fresh_path in &fresh_files {
        let name = fresh_path.file_name().and_then(|n| n.to_str());
        if !base_files
            .iter()
            .any(|p| p.file_name().and_then(|n| n.to_str()) == name)
        {
            report.warnings.push(format!(
                "{}: no baseline yet (new experiment, advisory)",
                name.unwrap_or_default()
            ));
        }
    }
    Ok(report)
}

/// The `BENCH_*.json` files under `path` (sorted), or `path` itself when
/// it is a file.
fn snapshot_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: cannot read dir: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(format!(
                "{}: no BENCH_*.json snapshots found",
                path.display()
            ));
        }
        Ok(entries)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// Reads and parses one snapshot file.
fn load_snapshot(path: &Path) -> Result<JsonSnapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    JsonSnapshot::from_json(&text).map_err(|e| format!("{}: invalid snapshot: {e}", path.display()))
}

/// JSON-escapes and quotes a string (the labels this crate emits are
/// ASCII, but escape defensively).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 so it round-trips as a JSON number (never NaN/inf —
/// measurements are finite; clamp defensively).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numbers
        // either way (JSON has one number type), nothing to fix.
        s
    } else {
        "0".into()
    }
}

/// A parsed JSON value — the minimal model the snapshot reader needs.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Looks a field up in a parsed object.
fn top_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {name:?}"))
}

/// Looks an *optional* unsigned counter up: absent is `None` (snapshots
/// written before the field existed stay parseable), present must still be
/// a well-formed unsigned integer.
fn opt_field(obj: &[(String, Value)], name: &str) -> Result<Option<u64>, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.unsigned(name))
        .transpose()
}

/// The floating-point sibling of [`opt_field`]: absent is `None`, present
/// must be a well-formed JSON number.
fn opt_float(obj: &[(String, Value)], name: &str) -> Result<Option<f64>, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.number(name))
        .transpose()
}

impl Value {
    fn object(&self, ctx: &str) -> Result<Vec<(String, Value)>, String> {
        match self {
            Value::Object(fields) => Ok(fields.clone()),
            other => Err(format!("{ctx}: expected an object, got {other:?}")),
        }
    }

    fn array(&self, ctx: &str) -> Result<&[Value], String> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(format!("{ctx}: expected an array, got {other:?}")),
        }
    }

    fn string(&self, ctx: &str) -> Result<String, String> {
        match self {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("{ctx}: expected a string, got {other:?}")),
        }
    }

    fn number(&self, ctx: &str) -> Result<f64, String> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(format!("{ctx}: expected a number, got {other:?}")),
        }
    }

    fn unsigned(&self, ctx: &str) -> Result<u64, String> {
        let n = self.number(ctx)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(format!("{ctx}: expected an unsigned integer, got {n}"))
        }
    }

    /// Recursive-descent parse of one value; returns the remainder.
    fn parse(s: &str) -> Result<(Value, &str), String> {
        let s = s.trim_start();
        let mut chars = s.chars();
        match chars.next() {
            None => Err("unexpected end of input".into()),
            Some('n') => s
                .strip_prefix("null")
                .map(|r| (Value::Null, r))
                .ok_or_else(|| "bad literal (expected null)".into()),
            Some('t') => s
                .strip_prefix("true")
                .map(|r| (Value::Bool(true), r))
                .ok_or_else(|| "bad literal (expected true)".into()),
            Some('f') => s
                .strip_prefix("false")
                .map(|r| (Value::Bool(false), r))
                .ok_or_else(|| "bad literal (expected false)".into()),
            Some('"') => Self::parse_string(&s[1..]),
            Some('[') => {
                let mut rest = s[1..].trim_start();
                let mut items = Vec::new();
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok((Value::Array(items), r));
                }
                loop {
                    let (v, r) = Self::parse(rest)?;
                    items.push(v);
                    rest = r.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = rest.strip_prefix(']') {
                        return Ok((Value::Array(items), r));
                    } else {
                        return Err("expected ',' or ']' in array".into());
                    }
                }
            }
            Some('{') => {
                let mut rest = s[1..].trim_start();
                let mut fields = Vec::new();
                if let Some(r) = rest.strip_prefix('}') {
                    return Ok((Value::Object(fields), r));
                }
                loop {
                    rest = rest.trim_start();
                    let Some(r) = rest.strip_prefix('"') else {
                        return Err("expected a quoted object key".into());
                    };
                    let (key, r) = Self::parse_string(r)?;
                    let Value::String(key) = key else {
                        unreachable!("parse_string returns strings")
                    };
                    let r = r.trim_start();
                    let Some(r) = r.strip_prefix(':') else {
                        return Err(format!("expected ':' after key {key:?}"));
                    };
                    let (v, r) = Self::parse(r)?;
                    fields.push((key, v));
                    rest = r.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = rest.strip_prefix('}') {
                        return Ok((Value::Object(fields), r));
                    } else {
                        return Err("expected ',' or '}' in object".into());
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .char_indices()
                    .find(|&(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .map_or(s.len(), |(i, _)| i);
                let (num, rest) = s.split_at(end);
                num.parse::<f64>()
                    .map(|n| (Value::Number(n), rest))
                    .map_err(|_| format!("bad number {num:?}"))
            }
            Some(c) => Err(format!("unexpected character {c:?}")),
        }
    }

    /// Parses the remainder of a string literal (the opening quote is
    /// consumed by the caller).
    fn parse_string(s: &str) -> Result<(Value, &str), String> {
        let mut out = String::new();
        let mut chars = s.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::String(out), &s[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((j, 'u')) => {
                        let hex = s.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        // Skip the 4 hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonSnapshot {
        JsonSnapshot {
            experiment: "fig4_zipf".into(),
            scale: 0.01,
            seed: 42,
            threads: 4,
            runs: vec![
                JsonRun {
                    workload: "skew=0.8".into(),
                    algorithm: "UApriori".into(),
                    engine: "vertical".into(),
                    wall_ms: 12.625,
                    peak_bytes: 1_048_576,
                    peak_memo_bytes: 65_536,
                    intersections: 1234,
                    num_itemsets: 31,
                    shards_evaluated: Some(96),
                    shards_pruned: Some(32),
                    border_rejudged: Some(12),
                    border_skipped: Some(40),
                    memo_patched: Some(88),
                    memo_rebuilt: Some(3),
                    ..Default::default()
                },
                JsonRun {
                    workload: "skew=1.2".into(),
                    algorithm: "UH-Mine \"quoted\"".into(),
                    engine: "n/a".into(),
                    wall_ms: 0.5,
                    peak_bytes: 0,
                    peak_memo_bytes: 0,
                    intersections: 0,
                    num_itemsets: 7,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample();
        let parsed = JsonSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_runs_roundtrip_but_do_not_write() {
        let snap = JsonSnapshot::new("empty", 0.5, 7);
        let parsed = JsonSnapshot::from_json(&snap.to_json()).unwrap();
        assert!(parsed.runs.is_empty());
        assert_eq!(parsed.seed, 7);
        let dir = std::env::temp_dir().join(format!("ufim-json-empty-{}", std::process::id()));
        assert!(snap.write(&dir).is_none());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for (bad, why) in [
            ("", "empty"),
            ("{", "unterminated object"),
            ("[1, 2]", "top level not an object"),
            ("{\"experiment\": 3}", "missing fields"),
            ("{\"a\": 1} trailing", "trailing content"),
        ] {
            assert!(JsonSnapshot::from_json(bad).is_err(), "{why}");
        }
        // A wrong-typed field is named in the error.
        let wrong = sample()
            .to_json()
            .replace("\"seed\": 42", "\"seed\": \"x\"");
        let err = JsonSnapshot::from_json(&wrong).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn write_and_check_file() {
        let dir = std::env::temp_dir().join(format!("ufim-json-test-{}", std::process::id()));
        let path = sample().write(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_fig4_zipf.json");
        let summary = check_file(&path).unwrap();
        assert!(summary.contains("2 runs"), "{summary}");
        let listed = check_path(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        // A directory without snapshots is an error.
        let empty = dir.join("sub");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(check_path(&empty).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_passes_on_identical_snapshots_and_warns_on_time() {
        let dir = std::env::temp_dir().join(format!("ufim-json-cmp-{}", std::process::id()));
        let base_dir = dir.join("base");
        let fresh_dir = dir.join("fresh");
        sample().write(&base_dir).unwrap();
        // Identical counters, 10× slower wall-clock on run 0.
        let mut fresh = sample();
        fresh.runs[0].wall_ms *= 10.0;
        fresh.write(&fresh_dir).unwrap();
        let report = compare_paths(&base_dir, &fresh_dir, 200.0).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(
            report.warnings[0].contains("wall_ms"),
            "{:?}",
            report.warnings
        );
        // A wide tolerance silences the warning.
        let report = compare_paths(&base_dir, &fresh_dir, 2000.0).unwrap();
        assert!(report.passed() && report.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_fails_on_counter_drift_and_missing_files() {
        let dir = std::env::temp_dir().join(format!("ufim-json-cmp2-{}", std::process::id()));
        let base_dir = dir.join("base");
        let fresh_dir = dir.join("fresh");
        sample().write(&base_dir).unwrap();
        let mut drifted = sample();
        drifted.runs[1].intersections += 1;
        drifted.runs[0].num_itemsets -= 1;
        drifted.write(&fresh_dir).unwrap();
        let report = compare_paths(&base_dir, &fresh_dir, 200.0).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert!(report.failures.iter().any(|f| f.contains("intersections")));
        assert!(report.failures.iter().any(|f| f.contains("num_itemsets")));
        // A baseline without a fresh counterpart is a failure; a fresh
        // snapshot without a baseline only warns.
        let mut extra = sample();
        extra.experiment = "fig4_new".into();
        extra.write(&fresh_dir).unwrap();
        std::fs::remove_file(fresh_dir.join("BENCH_fig4_zipf.json")).unwrap();
        let report = compare_paths(&base_dir, &fresh_dir, 200.0).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("no fresh counterpart")));
        assert!(report.warnings.iter().any(|w| w.contains("no baseline")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_fails_on_shape_and_identity_drift() {
        let mut report = CompareReport::default();
        let base = sample();
        // Changed labels and a dropped run both fail strictly.
        let mut fresh = sample();
        fresh.runs[0].engine = "diffset".into();
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.failures.iter().any(|f| f.contains("labels")));
        let mut report = CompareReport::default();
        let mut fresh = sample();
        fresh.runs.pop();
        fresh.seed += 1;
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.failures.iter().any(|f| f.contains("seed")));
        assert!(report.failures.iter().any(|f| f.contains("runs")));
        // Memo drift is advisory only.
        let mut report = CompareReport::default();
        let mut fresh = sample();
        fresh.runs[0].peak_memo_bytes += 1024;
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.passed());
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("peak_memo_bytes")));
    }

    #[test]
    fn pre_shard_snapshots_still_parse_and_compare_advisorily() {
        // A snapshot written before the shard counters existed: strip the
        // new fields from the emitted text and it must still parse, with
        // the counters reported absent.
        let mut old_text = sample().to_json();
        old_text = old_text.replace(", \"shards_evaluated\": 96", "");
        old_text = old_text.replace(", \"shards_pruned\": 32", "");
        let old = JsonSnapshot::from_json(&old_text).unwrap();
        assert_eq!(old.runs[0].shards_evaluated, None);
        assert_eq!(old.runs[0].shards_pruned, None);
        // Comparing a fresh sharded snapshot against that old baseline —
        // presence mismatch on run 0 — warns twice but passes the gate.
        let dir = std::env::temp_dir().join(format!("ufim-json-shard-{}", std::process::id()));
        let (base_dir, fresh_dir) = (dir.join("base"), dir.join("fresh"));
        old.write(&base_dir).unwrap();
        sample().write(&fresh_dir).unwrap();
        let report = compare_paths(&base_dir, &fresh_dir, 200.0).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.warnings.len(), 2, "{:?}", report.warnings);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("shards_evaluated") && w.contains("advisory")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_fields_absent_vs_present_only_warn() {
        // A fresh bench_serve snapshot carries the memo counters and the
        // latency percentiles; a pre-serve baseline has neither. The gate
        // must warn about the new fields, never fail.
        let base = sample();
        let mut fresh = sample();
        fresh.runs[0].memo_hits = Some(120);
        fresh.runs[0].memo_extends = Some(2);
        fresh.runs[0].latency_p50_ms = Some(0.8);
        fresh.runs[0].latency_p95_ms = Some(2.5);
        fresh.runs[0].latency_p99_ms = Some(4.0);
        fresh.runs[0].qps = Some(1500.0);
        // The new fields survive a serialization roundtrip bit-for-bit.
        let parsed = JsonSnapshot::from_json(&fresh.to_json()).unwrap();
        assert_eq!(parsed, fresh);
        let mut report = CompareReport::default();
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.warnings.len(), 6, "{:?}", report.warnings);
        for field in ["memo_hits", "memo_extends", "latency_p50_ms", "qps"] {
            assert!(
                report
                    .warnings
                    .iter()
                    .any(|w| w.contains(field) && w.contains("advisory")),
                "no advisory warning for {field}: {:?}",
                report.warnings
            );
        }
        // Both sides carrying the fields with drift inside the tolerance
        // is silent; beyond the tolerance it warns but still passes.
        let mut report = CompareReport::default();
        let base = fresh.clone();
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.passed() && report.warnings.is_empty());
        let mut report = CompareReport::default();
        let mut slow = fresh.clone();
        slow.runs[0].latency_p99_ms = Some(400.0);
        compare_snapshots("s", &base, &slow, 200.0, &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("latency_p99_ms") && w.contains("tolerance")));
    }

    #[test]
    fn shard_counter_drift_is_advisory_not_strict() {
        let mut report = CompareReport::default();
        let base = sample();
        let mut fresh = sample();
        fresh.runs[0].shards_evaluated = Some(64);
        fresh.runs[0].shards_pruned = Some(64);
        compare_snapshots("s", &base, &fresh, 200.0, &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.warnings.len(), 2, "{:?}", report.warnings);
        // The roundtrip keeps the optional fields.
        let parsed = JsonSnapshot::from_json(&fresh.to_json()).unwrap();
        assert_eq!(parsed, fresh);
    }

    #[test]
    fn parser_handles_nested_and_escaped_values() {
        let (v, rest) =
            Value::parse("{\"a\": [1, {\"b\": \"x\\u0021\"}, true, null], \"c\": -2.5e1}  ")
                .unwrap();
        assert_eq!(rest.trim(), "");
        let obj = v.object("t").unwrap();
        assert_eq!(top_field(&obj, "c").unwrap().number("c").unwrap(), -25.0);
        let arr = top_field(&obj, "a").unwrap().clone();
        let arr = arr.array("a").unwrap();
        assert_eq!(arr[0].number("0").unwrap(), 1.0);
        let inner = arr[1].object("1").unwrap();
        assert_eq!(top_field(&inner, "b").unwrap().string("b").unwrap(), "x!");
    }
}
