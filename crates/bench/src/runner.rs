//! Measured execution of one mining run: wall time, peak heap, result size.

use ufim_core::traits::ProbabilisticMiner;
use ufim_core::{EngineKind, MinerStats, MiningParams, UncertainDatabase};
use ufim_metrics::alloc::measure_peak;
use ufim_metrics::time::Stopwatch;
use ufim_miners::{Algorithm, MatrixMiner};

/// The measurements of a single `(algorithm, database, parameters)` run —
/// one point of one curve in the paper's figures.
#[derive(Clone, Debug)]
pub struct MeasuredRun {
    /// Algorithm name as printed in the paper.
    pub algorithm: &'static str,
    /// Wall-clock seconds.
    pub time_secs: f64,
    /// Peak heap growth during the run, in bytes (0 unless the counting
    /// allocator is installed, as it is in the `ufim-bench` binary).
    pub peak_bytes: usize,
    /// Number of frequent itemsets found.
    pub num_itemsets: usize,
    /// The miner's work counters.
    pub stats: MinerStats,
    /// Largest itemset cardinality.
    pub max_len: usize,
}

/// Runs an expected-support algorithm (Definition 2) measured.
///
/// # Panics
/// Panics if `algo` is not an expected-support miner or parameters are
/// invalid — the harness constructs both from trusted tables.
pub fn run_expected(algo: Algorithm, db: &UncertainDatabase, min_esup: f64) -> MeasuredRun {
    run_expected_with(algo, db, min_esup, EngineKind::default())
}

/// [`run_expected`] on an explicit support backend (ignored by miners
/// outside the Apriori framework).
pub fn run_expected_with(
    algo: Algorithm,
    db: &UncertainDatabase,
    min_esup: f64,
    engine: EngineKind,
) -> MeasuredRun {
    let miner = algo
        .expected_support_miner_with(engine)
        .unwrap_or_else(|| panic!("{} is not an expected-support miner", algo.name()));
    let sw = Stopwatch::start();
    let (result, peak) = measure_peak(|| {
        miner
            .mine_expected_ratio(db, min_esup)
            .expect("valid parameters")
    });
    MeasuredRun {
        algorithm: algo.name(),
        time_secs: sw.elapsed_secs(),
        peak_bytes: peak,
        num_itemsets: result.len(),
        max_len: result.max_len(),
        stats: result.stats,
    }
}

/// Runs a probabilistic algorithm (Definition 4) measured.
///
/// # Panics
/// Panics if `algo` is not a probabilistic miner or parameters are invalid.
pub fn run_probabilistic(
    algo: Algorithm,
    db: &UncertainDatabase,
    min_sup: f64,
    pft: f64,
) -> MeasuredRun {
    run_probabilistic_with(algo, db, min_sup, pft, EngineKind::default())
}

/// [`run_probabilistic`] on an explicit support backend (the backend rides
/// in [`MiningParams::engine`]; non-Apriori-framework miners ignore it).
pub fn run_probabilistic_with(
    algo: Algorithm,
    db: &UncertainDatabase,
    min_sup: f64,
    pft: f64,
    engine: EngineKind,
) -> MeasuredRun {
    let miner = algo
        .probabilistic_miner()
        .unwrap_or_else(|| panic!("{} is not a probabilistic miner", algo.name()));
    let params = MiningParams::new(min_sup, pft)
        .expect("valid parameters")
        .with_engine(engine);
    let sw = Stopwatch::start();
    let (result, peak) = measure_peak(|| {
        miner
            .mine_probabilistic(db, params)
            .expect("valid parameters")
    });
    MeasuredRun {
        algorithm: algo.name(),
        time_secs: sw.elapsed_secs(),
        peak_bytes: peak,
        num_itemsets: result.len(),
        max_len: result.max_len(),
        stats: result.stats,
    }
}

/// Runs one measure × traversal × engine matrix cell measured.
///
/// # Panics
/// Panics on unsupported cells (exact × tree) or invalid parameters — the
/// harness filters cells through [`MatrixMiner::supported`] first.
pub fn run_matrix(
    cell: MatrixMiner,
    db: &UncertainDatabase,
    min_sup: f64,
    pft: f64,
    engine: EngineKind,
) -> MeasuredRun {
    // The cell itself selects measure and traversal; the params only need
    // to carry the thresholds and the support backend.
    let params = MiningParams::new(min_sup, pft)
        .expect("valid parameters")
        .with_engine(engine);
    let sw = Stopwatch::start();
    let (result, peak) = measure_peak(|| {
        cell.mine_probabilistic(db, params)
            .expect("supported matrix cell")
    });
    MeasuredRun {
        algorithm: ufim_core::traits::MinerInfo::name(&cell),
        time_secs: sw.elapsed_secs(),
        peak_bytes: peak,
        num_itemsets: result.len(),
        max_len: result.max_len(),
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn expected_run_measures() {
        let db = paper_table1();
        let run = run_expected(Algorithm::UApriori, &db, 0.5);
        assert_eq!(run.algorithm, "UApriori");
        assert_eq!(run.num_itemsets, 2);
        assert_eq!(run.max_len, 1);
        assert!(run.time_secs >= 0.0);
    }

    #[test]
    fn probabilistic_run_measures() {
        let db = paper_table1();
        let run = run_probabilistic(Algorithm::DCB, &db, 0.5, 0.7);
        assert_eq!(run.algorithm, "DCB");
        assert!(run.num_itemsets >= 1);
    }

    #[test]
    #[should_panic(expected = "not an expected-support miner")]
    fn wrong_interface_panics() {
        let db = paper_table1();
        run_expected(Algorithm::DCB, &db, 0.5);
    }

    #[test]
    fn matrix_run_measures() {
        use ufim_core::{MeasureKind, TraversalKind};
        let db = paper_table1();
        let cell = MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::HyperStructure);
        let run = run_matrix(cell, &db, 0.5, 0.7, EngineKind::default());
        assert_eq!(run.algorithm, "exact-dp×hyper");
        assert!(run.num_itemsets >= 1);
        assert!(run.time_secs >= 0.0);
    }
}
