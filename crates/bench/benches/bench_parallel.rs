//! The parallel pattern-growth benchmark: the headline workloads —
//! UApriori on a dense database (level-wise, scratch-space intersection
//! kernels), NDUH-Mine (hyper-structure traversal), UFP-growth
//! (tree-growth traversal), and the **deep-skew** pair (UH-Mine and
//! UFP-growth on a Zipf-concentrated database whose one dominant
//! first-level subtree a one-level fan-out provably cannot balance: with
//! ~90% of the transactions in one subtree, one-level decomposition caps
//! the parallel fraction at ~10%, so nested re-spawning is the only way
//! past ~1.1× speedup) — swept over worker pool sizes through
//! `ufim_core::parallel::with_thread_override`.
//!
//! On a multi-core host the `threads=N` rows show the work-stealing
//! speedup; on a single-core container they bound the scheduling overhead
//! instead (`threads=1` must not regress against the sequential code —
//! results are bit-identical by construction, pinned by
//! `tests/thread_determinism.rs`). The `parallel_guard` group is the CI
//! smoke: it asserts cross-pool-size result identity on the benchmarked
//! workloads, including the deep-skew fixture's nested-spawn path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use ufim_core::parallel::with_thread_override;
use ufim_core::prelude::*;
use ufim_miners::{NDUHMine, UApriori, UFPGrowth, UHMine};

/// Dense synthetic uncertain database (same generator family as
/// `bench_engines`): every item appears in `density` of the transactions
/// with a high existence probability.
fn dense_db(transactions: usize, items: u32, density: f64, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = (0..transactions)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..items)
                .filter_map(|i| {
                    if rng.gen_bool(density) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

/// Sparser mixed database — the depth-first miners' home regime.
fn sparse_db(transactions: usize, items: u32, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = (0..transactions)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..items)
                .filter_map(|i| {
                    // Zipf-flavored inclusion: low ids common, tail rare.
                    let p_incl = 0.6 / (1.0 + i as f64 * 0.35);
                    if rng.gen_bool(p_incl) {
                        Some((i, rng.gen_range(0.3..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

/// Deeply skewed database — the single shared definition in
/// `ufim_data::benchmarks::deep_skew` (also the determinism suite's
/// fixture, so this guard and that suite can never drift apart): item
/// inclusion decays geometrically from a near-ubiquitous item 0, so one
/// first-level subtree holds almost all the work and only nested
/// re-spawning can spread it across a pool.
use ufim_data::benchmarks::deep_skew as deep_skew_db;

/// Pool sizes to sweep: sequential, two workers, and the host's
/// parallelism — deduplicated so 1- and 2-core hosts never register the
/// same benchmark id twice.
fn pools() -> Vec<usize> {
    let max = ufim_core::parallel::max_threads();
    let mut pools = vec![1, 2.min(max), max];
    pools.dedup();
    pools
}

fn bench_uapriori_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_uapriori_dense");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let db = dense_db(20_000, 24, 0.4, 7);
    for threads in pools() {
        group.bench_with_input(
            BenchmarkId::new(format!("threads={threads}"), "N=20k,I=24,d=0.4"),
            &db,
            |b, db| {
                let miner = UApriori::with_engine(EngineKind::Vertical);
                b.iter(|| {
                    with_thread_override(threads, || {
                        miner
                            .mine_expected_ratio(std::hint::black_box(db), 0.02)
                            .unwrap()
                            .len()
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_nduh_mine(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_nduh_mine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let db = sparse_db(30_000, 24, 13);
    for threads in pools() {
        group.bench_with_input(
            BenchmarkId::new(format!("threads={threads}"), "N=30k,I=24,zipfish"),
            &db,
            |b, db| {
                let miner = NDUHMine::new();
                b.iter(|| {
                    with_thread_override(threads, || {
                        miner
                            .mine_probabilistic_raw(std::hint::black_box(db), 0.05, 0.5)
                            .unwrap()
                            .len()
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_ufp_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_ufp_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let db = dense_db(4_000, 20, 0.3, 21);
    for threads in pools() {
        group.bench_with_input(
            BenchmarkId::new(format!("threads={threads}"), "N=4k,I=20,d=0.3"),
            &db,
            |b, db| {
                let miner = UFPGrowth::new();
                b.iter(|| {
                    with_thread_override(threads, || {
                        miner
                            .mine_expected_ratio(std::hint::black_box(db), 0.05)
                            .unwrap()
                            .len()
                    })
                })
            },
        );
    }
    group.finish();
}

/// The deep-skew workload: UH-Mine and UFP-growth on the dominant-subtree
/// database. The interesting comparison is `threads=1` vs `threads=N`
/// here specifically — a one-level fan-out gains almost nothing on this
/// shape, nested spawning is what moves it.
fn bench_deep_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_deep_skew");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let db = deep_skew_db(12_000, 16, 4242);
    for threads in pools() {
        group.bench_with_input(
            BenchmarkId::new(format!("uh_mine/threads={threads}"), "N=12k,I=16,skewed"),
            &db,
            |b, db| {
                let miner = UHMine::new();
                b.iter(|| {
                    with_thread_override(threads, || {
                        miner
                            .mine_expected_ratio(std::hint::black_box(db), 0.05)
                            .unwrap()
                            .len()
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("ufp_growth/threads={threads}"), "N=12k,I=16,skewed"),
            &db,
            |b, db| {
                let miner = UFPGrowth::new();
                b.iter(|| {
                    with_thread_override(threads, || {
                        miner
                            .mine_expected_ratio(std::hint::black_box(db), 0.05)
                            .unwrap()
                            .len()
                    })
                })
            },
        );
    }
    group.finish();
}

/// CI smoke: the benchmarked miners must produce identical results
/// at every pool size (checked once, outside timing).
fn bench_parallel_guard(c: &mut Criterion) {
    let dense = dense_db(4_000, 16, 0.4, 7);
    let sparse = sparse_db(4_000, 16, 13);
    // Full-size deep-skew fixture: the nested-spawn path only triggers
    // above the size cutoffs, and pinning that path is the point.
    let skewed = deep_skew_db(12_000, 16, 4242);
    let reference_u = with_thread_override(1, || {
        UApriori::with_engine(EngineKind::Vertical)
            .mine_expected_ratio(&dense, 0.02)
            .unwrap()
    });
    let reference_n = with_thread_override(1, || {
        NDUHMine::new()
            .mine_probabilistic_raw(&sparse, 0.05, 0.5)
            .unwrap()
    });
    let reference_t = with_thread_override(1, || {
        UFPGrowth::new().mine_expected_ratio(&dense, 0.05).unwrap()
    });
    let reference_skew_u = with_thread_override(1, || {
        UHMine::new().mine_expected_ratio(&skewed, 0.05).unwrap()
    });
    let reference_skew_t = with_thread_override(1, || {
        UFPGrowth::new().mine_expected_ratio(&skewed, 0.05).unwrap()
    });
    for threads in [2usize, 8] {
        with_thread_override(threads, || {
            let u = UApriori::with_engine(EngineKind::Vertical)
                .mine_expected_ratio(&dense, 0.02)
                .unwrap();
            assert_eq!(u.sorted_itemsets(), reference_u.sorted_itemsets());
            assert_eq!(u.stats, reference_u.stats, "UApriori stats @ {threads}");
            let n = NDUHMine::new()
                .mine_probabilistic_raw(&sparse, 0.05, 0.5)
                .unwrap();
            assert_eq!(n.sorted_itemsets(), reference_n.sorted_itemsets());
            assert_eq!(n.stats, reference_n.stats, "NDUH-Mine stats @ {threads}");
            let t = UFPGrowth::new().mine_expected_ratio(&dense, 0.05).unwrap();
            assert_eq!(t.sorted_itemsets(), reference_t.sorted_itemsets());
            assert_eq!(t.stats, reference_t.stats, "UFP-growth stats @ {threads}");
            // Deep skew: these runs take the nested-spawn path, so the
            // guard pins nested bit-identity in CI, not just locally.
            let su = UHMine::new().mine_expected_ratio(&skewed, 0.05).unwrap();
            assert_eq!(su.sorted_itemsets(), reference_skew_u.sorted_itemsets());
            assert_eq!(
                su.stats, reference_skew_u.stats,
                "deep-skew UH-Mine stats @ {threads}"
            );
            let st = UFPGrowth::new().mine_expected_ratio(&skewed, 0.05).unwrap();
            assert_eq!(st.sorted_itemsets(), reference_skew_t.sorted_itemsets());
            assert_eq!(
                st.stats, reference_skew_t.stats,
                "deep-skew UFP-growth stats @ {threads}"
            );
        });
    }
    let mut group = c.benchmark_group("parallel_guard");
    group
        .sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    group.bench_function("pool_sizes_identical", |b| {
        b.iter(|| {
            reference_u.len()
                + reference_n.len()
                + reference_t.len()
                + reference_skew_u.len()
                + reference_skew_t.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_uapriori_dense,
    bench_nduh_mine,
    bench_ufp_growth,
    bench_deep_skew,
    bench_parallel_guard
);
criterion_main!(benches);
