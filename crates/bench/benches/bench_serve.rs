//! CCBench-style latency/throughput harness for the `ufim-serve` query
//! server: mixed sweep/top-k/probe traffic against a resident dataset,
//! driven by 1/4/8 closed-loop clients, with the cross-query memo
//! contract asserted in-binary.
//!
//! The run splits into a **counted pass** and a **timed phase**, like
//! `bench_streaming`. The counted pass replays the whole workload once on
//! a dedicated `ServeCore` and derives every deterministic counter: the
//! priming mines' tid-list intersections and record counts (strict fields
//! — bit-identical across machines and pool sizes), and the memo
//! hit/miss/extend tallies of the warm replay (advisory). It also
//! enforces the serve-layer acceptance contract in-binary:
//!
//! * every warm sweep answer is **bit-identical** to a cold
//!   `MatrixMiner` mine at the same parameters, for every primed
//!   measure × engine cell and every sweep threshold;
//! * the warm replay charges **zero** intersections and zero scans — a
//!   memo-covered query never touches the engines;
//! * the memo-hit ratio of the mixed workload is ≥ 0.5.
//!
//! The timed phase then measures what CI actually gates on advisorily:
//! per-request latency percentiles (p50/p95/p99) and sustained
//! queries-per-second under 1, 4 and 8 concurrent closed-loop clients,
//! each replaying the same mixed workload against a shared primed server.
//! Timing never feeds the strict fields, so `--smoke` (fewer timing
//! rounds) emits the same counters as a full run and the checked-in
//! `BENCH_serve.json` baseline stays comparable either way.
//!
//! Flags: `--json-out DIR` writes the snapshot; `--smoke` shrinks the
//! timing rounds (counters unchanged); `--log FILE` appends the counted
//! pass's per-request server log (the CI artifact); unknown flags
//! (cargo's `--bench`) are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use ufim_bench::json::{JsonRun, JsonSnapshot};
use ufim_core::prelude::*;
use ufim_core::{EngineKind, MeasureKind, TraversalKind};
use ufim_miners::MatrixMiner;
use ufim_serve::{Json, ServeCore};

const SEED: u64 = 23;
/// Resident dataset size (transactions).
const N: usize = 2_048;
const ITEMS: u32 = 12;
/// The basis threshold the server is primed at — every workload query
/// sits at or above it, so the whole mixed replay is memo-answerable,
/// and low enough (pair esup on the fixture is ≈ 0.069·N) that the
/// pair probes hit retained records instead of the index fallback.
const BASIS: f64 = 0.05;
const BASIS_PFT: f64 = 0.3;

/// The primed measure × engine cells the workload exercises.
const CELLS: [(MeasureKind, EngineKind); 3] = [
    (MeasureKind::ExpectedSupport, EngineKind::Vertical),
    (MeasureKind::ExpectedSupport, EngineKind::Diffset),
    (MeasureKind::Normal, EngineKind::Vertical),
];

/// The resident dataset: dense synthetic fixture, confident readings —
/// singletons and most pairs stay frequent at the basis threshold, so
/// the retained lattice is non-trivial at every level the probes touch.
fn fixture() -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(SEED);
    let transactions = (0..N)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..ITEMS)
                .filter_map(|i| {
                    if rng.gen_bool(0.35) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(transactions, ITEMS)
}

/// Priming requests: one lowest-threshold sweep per cell. These are the
/// only queries in the run that mine.
fn prime_lines() -> Vec<String> {
    CELLS
        .iter()
        .map(|(measure, engine)| {
            format!(
                r#"{{"op":"sweep","dataset":"bench","measure":"{}","engine":"{}","pft":{BASIS_PFT},"thresholds":[{BASIS}]}}"#,
                measure.name(),
                engine.name()
            )
        })
        .collect()
}

/// One round of the mixed closed-loop workload: threshold sweeps, top-k
/// and itemset probes over every primed cell, all covered by the basis.
fn workload_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for (measure, engine) in CELLS {
        lines.push(format!(
            r#"{{"op":"sweep","dataset":"bench","measure":"{}","engine":"{}","pft":0.5,"thresholds":[0.2,0.3,0.5]}}"#,
            measure.name(),
            engine.name()
        ));
        lines.push(format!(
            r#"{{"op":"topk","dataset":"bench","measure":"{}","engine":"{}","min_sup":0.25,"pft":0.5,"k":8,"min_len":1}}"#,
            measure.name(),
            engine.name()
        ));
        lines.push(format!(
            r#"{{"op":"probe","dataset":"bench","measure":"{}","engine":"{}","min_sup":0.25,"pft":0.5,"itemset":[0]}}"#,
            measure.name(),
            engine.name()
        ));
        lines.push(format!(
            r#"{{"op":"probe","dataset":"bench","measure":"{}","engine":"{}","min_sup":0.25,"pft":0.5,"itemset":[0,1]}}"#,
            measure.name(),
            engine.name()
        ));
    }
    lines
}

/// A fresh server with the fixture resident but the memo cold.
fn fresh_core(db: &UncertainDatabase) -> Arc<ServeCore> {
    let core = Arc::new(ServeCore::new(64 << 20));
    core.load_db("bench", db.clone());
    core
}

/// A required numeric field of a line-JSON response.
fn field_u64(response: &str, name: &str) -> u64 {
    Json::parse(response)
        .unwrap_or_else(|e| panic!("unparseable response {response:?}: {e}"))
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response lacks {name:?}: {response}"))
}

/// Deterministic counters of the counted pass.
struct Counted {
    cold_intersections: u64,
    num_itemsets: u64,
    warm_intersections: u64,
    memo_hits: u64,
    memo_misses: u64,
    memo_extends: u64,
    resident_bytes: u64,
}

/// The counted pass: prime, verify the warm-vs-cold contract cell by
/// cell, replay the workload once, read the memo counters.
fn counted_pass(db: &UncertainDatabase, log: Option<&std::path::Path>) -> Counted {
    let core = fresh_core(db);
    if let Some(path) = log {
        if let Err(e) = core.log_to(path) {
            eprintln!("warning: cannot open log {}: {e}", path.display());
        }
    }
    let mut cold_intersections = 0;
    let mut num_itemsets = 0;
    for line in prime_lines() {
        let response = core.handle_line(&line);
        assert!(
            response.contains("\"ok\": true") || response.contains("\"ok\":true"),
            "priming failed: {response}"
        );
        cold_intersections += field_u64(&response, "intersections");
        let parsed = Json::parse(&response).unwrap();
        for entry in parsed.get("results").and_then(Json::as_arr).unwrap() {
            num_itemsets += entry.get("count").and_then(Json::as_u64).unwrap();
        }
    }

    // The acceptance contract: every warm answer the workload can ask for
    // is bit-identical to a cold MatrixMiner mine, and computes nothing.
    for (measure, engine) in CELLS {
        for threshold in [0.2, 0.3, 0.5] {
            let params = MiningParams::new(threshold, 0.5).unwrap();
            let (warm, outcome) = core.answer("bench", measure, engine, &params).unwrap();
            assert_eq!(
                outcome.name(),
                "memo",
                "{measure}x{engine}@{threshold}: expected a warm answer"
            );
            assert_eq!(
                warm.stats.intersections, 0,
                "{measure}x{engine}@{threshold}"
            );
            assert_eq!(warm.stats.scans, 0, "{measure}x{engine}@{threshold}");
            let mut cold = MatrixMiner::new(measure, TraversalKind::LevelWise)
                .mine_probabilistic(db, params.with_engine(engine))
                .unwrap();
            cold.canonicalize();
            assert_eq!(
                warm.itemsets, cold.itemsets,
                "{measure}x{engine}@{threshold}: warm records diverge from the cold mine"
            );
        }
    }

    // One serial replay of the mixed workload: all warm, zero engine work.
    let mut warm_intersections = 0;
    for line in workload_lines() {
        let response = core.handle_line(&line);
        assert!(
            response.contains("\"ok\": true") || response.contains("\"ok\":true"),
            "workload query failed: {response}"
        );
        warm_intersections += field_u64(&response, "intersections");
    }
    assert_eq!(
        warm_intersections, 0,
        "warm workload charged tid-list intersections — memo reuse collapsed"
    );

    let c = core.memo().counters();
    let hit_ratio = c.hits as f64 / (c.hits + c.misses) as f64;
    assert!(
        hit_ratio >= 0.5,
        "memo-hit ratio {hit_ratio:.2} below the 0.5 floor (hits {}, misses {})",
        c.hits,
        c.misses
    );
    Counted {
        cold_intersections,
        num_itemsets,
        warm_intersections,
        memo_hits: c.hits,
        memo_misses: c.misses,
        memo_extends: c.extends,
        resident_bytes: core.memo().resident_bytes(),
    }
}

/// Sorted-latency percentile (nearest-rank), in milliseconds.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// The timed phase for one pool size: `clients` closed-loop threads each
/// replay the workload `rounds` times against a shared primed server.
/// Returns `(p50, p95, p99, qps, wall_ms)`.
fn timed_phase(db: &UncertainDatabase, clients: usize, rounds: usize) -> (f64, f64, f64, f64, f64) {
    let core = fresh_core(db);
    for line in prime_lines() {
        core.handle_line(&line);
    }
    let lines = Arc::new(workload_lines());
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let core = Arc::clone(&core);
            let lines = Arc::clone(&lines);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(rounds * lines.len());
                for r in 0..rounds {
                    // Stagger starting offsets so the pools interleave
                    // different request kinds, not marching in lockstep.
                    for i in 0..lines.len() {
                        let q = (i + c + r) % lines.len();
                        let t = Instant::now();
                        std::hint::black_box(core.handle_line(&lines[q]));
                        latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    latencies.sort_by(f64::total_cmp);
    let qps = latencies.len() as f64 / (wall_ms / 1000.0);
    (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
        qps,
        wall_ms,
    )
}

fn main() {
    let mut smoke = false;
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut log: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json-out" => {
                json_out = Some(args.next().expect("--json-out needs a directory").into());
            }
            "--log" => log = Some(args.next().expect("--log needs a file").into()),
            _ => {} // cargo bench passes --bench; ignore unknown flags
        }
    }

    let db = fixture();
    let counted = counted_pass(&db, log.as_deref());
    println!(
        "counted pass: priming {} intersections, {} records; warm replay {} intersections, \
         memo {} hits / {} misses / {} extends, {} resident bytes",
        counted.cold_intersections,
        counted.num_itemsets,
        counted.warm_intersections,
        counted.memo_hits,
        counted.memo_misses,
        counted.memo_extends,
        counted.resident_bytes
    );

    let rounds = if smoke { 2 } else { 16 };
    let mut snap = JsonSnapshot::new("serve", 1.0, SEED);
    for clients in [1usize, 4, 8] {
        let (p50, p95, p99, qps, wall_ms) = timed_phase(&db, clients, rounds);
        println!(
            "clients={clients:<2} p50 {p50:>7.3} ms  p95 {p95:>7.3} ms  p99 {p99:>7.3} ms  \
             {qps:>8.0} q/s  ({wall_ms:.1} ms total)"
        );
        snap.runs.push(JsonRun {
            workload: format!("N={N},clients={clients}"),
            algorithm: "mixed sweep/topk/probe".to_string(),
            engine: "memo".to_string(),
            wall_ms,
            peak_memo_bytes: counted.resident_bytes,
            intersections: counted.cold_intersections,
            num_itemsets: counted.num_itemsets,
            memo_hits: Some(counted.memo_hits),
            memo_extends: Some(counted.memo_extends),
            latency_p50_ms: Some(p50),
            latency_p95_ms: Some(p95),
            latency_p99_ms: Some(p99),
            qps: Some(qps),
            ..Default::default()
        });
    }

    if let Some(dir) = json_out {
        match snap.write(&dir) {
            Some(path) => println!("wrote {}", path.display()),
            None => std::process::exit(1),
        }
    }
}
