//! Criterion micro-benchmarks backing Figure 4: the three expected-support
//! miners across a dense and a sparse dataset, plus the decremental-pruning
//! ablation called out in DESIGN.md.
//!
//! These complement (not replace) the `ufim-bench fig4` harness: Criterion
//! gives statistically robust *time* comparisons at a fixed small scale,
//! while the harness sweeps full parameter axes and measures memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ufim_core::prelude::*;
use ufim_data::Benchmark;
use ufim_miners::{Algorithm, UApriori};

const SCALE: f64 = 0.002;
const SEED: u64 = 42;

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_esup_miners");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for bench in [
        Benchmark::Connect,
        Benchmark::Accident,
        Benchmark::Kosarak,
        Benchmark::Gazelle,
    ] {
        let db = bench.generate(SCALE, SEED);
        // A mid-axis threshold: hard enough to exercise level ≥ 2.
        let min_esup = match bench {
            Benchmark::Connect => 0.5,
            Benchmark::Accident => 0.3,
            Benchmark::Kosarak => 0.005,
            Benchmark::Gazelle => 0.01,
            Benchmark::T25I15D320k => 0.1,
        };
        for algo in Algorithm::EXPECTED_SUPPORT {
            let miner = algo.expected_support_miner().unwrap();
            group.bench_with_input(BenchmarkId::new(algo.name(), bench.name()), &db, |b, db| {
                b.iter(|| {
                    miner
                        .mine_expected_ratio(std::hint::black_box(db), min_esup)
                        .unwrap()
                        .len()
                })
            });
        }
    }
    group.finish();
}

/// Ablation A-2 (DESIGN.md): UApriori's decremental pruning on/off.
fn bench_decremental_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_ablation_decremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let db = Benchmark::Connect.generate(SCALE, SEED);
    for (label, miner) in [
        ("plain", UApriori::new()),
        ("decremental", UApriori::with_decremental_pruning()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                miner
                    .mine_expected_ratio(std::hint::black_box(&db), 0.45)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datasets, bench_decremental_ablation);
criterion_main!(benches);
