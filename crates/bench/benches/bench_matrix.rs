//! Criterion coverage for the measure × traversal matrix: the same
//! frequentness judgment on every traversal that can carry it, plus the
//! previously unbuildable cells head-to-head with their named level-wise
//! counterparts. `ufim-bench matrix` sweeps the grid on the paper-shaped
//! datasets; this microbenchmark isolates the traversal cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use ufim_core::prelude::*;
use ufim_core::{MeasureKind, TraversalKind};
use ufim_miners::MatrixMiner;

/// A mixed-density synthetic database: a handful of hot items plus a sparse
/// tail, so neither traversal family gets a free win.
fn mixed_db(transactions: usize, items: u32, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = (0..transactions)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..items)
                .filter_map(|i| {
                    let density = if i < 6 { 0.5 } else { 0.1 };
                    if rng.gen_bool(density) {
                        Some((i, rng.gen_range(0.3..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

fn bench_measure_across_traversals(c: &mut Criterion) {
    let db = mixed_db(4_000, 20, 13);
    let params = MiningParams::new(0.05, 0.7).unwrap();

    for measure in [MeasureKind::Normal, MeasureKind::ExactDp] {
        let mut group = c.benchmark_group(format!("matrix_{measure}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
        for traversal in TraversalKind::ALL {
            if !MatrixMiner::supported(measure, traversal) {
                continue;
            }
            let cell = MatrixMiner::new(measure, traversal);
            group.bench_with_input(
                BenchmarkId::new(traversal.name(), "N=4k,I=20"),
                &db,
                |b, db| {
                    b.iter(|| {
                        cell.mine_probabilistic(std::hint::black_box(db), params)
                            .unwrap()
                            .len()
                    })
                },
            );
        }
        group.finish();
    }
}

/// Sanity companion to the timing: every traversal of a measure must find
/// the same itemsets on the benchmarked workload (checked once, untimed).
fn bench_matrix_guard(c: &mut Criterion) {
    let db = mixed_db(1_000, 16, 13);
    let params = MiningParams::new(0.05, 0.7).unwrap();
    let mut total = 0usize;
    for measure in MeasureKind::ALL {
        let reference = MatrixMiner::new(measure, TraversalKind::LevelWise)
            .mine_probabilistic(&db, params)
            .unwrap();
        for traversal in [TraversalKind::HyperStructure, TraversalKind::TreeGrowth] {
            if !MatrixMiner::supported(measure, traversal) {
                continue;
            }
            let got = MatrixMiner::new(measure, traversal)
                .mine_probabilistic(&db, params)
                .unwrap();
            assert_eq!(
                got.sorted_itemsets(),
                reference.sorted_itemsets(),
                "{measure}×{traversal} diverged on the bench workload"
            );
            total += got.len();
        }
    }
    let mut group = c.benchmark_group("matrix_guard");
    group
        .sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    group.bench_function("traversals_identical", |b| b.iter(|| total));
    group.finish();
}

criterion_group!(benches, bench_measure_across_traversals, bench_matrix_guard);
criterion_main!(benches);
