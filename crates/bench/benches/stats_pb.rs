//! Substrate benchmarks: the Poisson-Binomial kernels that differentiate
//! the exact miners, and the two ablations DESIGN.md calls out:
//!
//! * **A-1 (FFT crossover)** — naive vs FFT convolution across output sizes,
//!   justifying `ufim_stats::conv::FFT_CROSSOVER`;
//! * **kernel scaling** — `survival_dp` (`O(N·msup)`) vs
//!   `pmf_divide_conquer` (`O(N log N)`) vs the `O(1)`-after-moments
//!   approximations — the complexity hierarchy the paper prints as Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ufim_stats::chernoff::chernoff_upper_bound;
use ufim_stats::conv::{convolve_fft, convolve_naive};
use ufim_stats::normal::normal_survival_with_continuity;
use ufim_stats::pb::{pmf_divide_conquer, support_moments, survival_dp};
use ufim_stats::poisson::poisson_survival;

fn probs(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 37 % 100) as f64 + 1.0) / 101.0)
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pb_kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for &n in &[256usize, 1024, 4096] {
        let q = probs(n);
        let msup = n / 2;
        group.bench_with_input(BenchmarkId::new("survival_dp", n), &q, |b, q| {
            b.iter(|| survival_dp(std::hint::black_box(q), msup))
        });
        group.bench_with_input(BenchmarkId::new("pmf_dc_fft", n), &q, |b, q| {
            b.iter(|| pmf_divide_conquer(std::hint::black_box(q), Some(msup)))
        });
        group.bench_with_input(BenchmarkId::new("normal_approx", n), &q, |b, q| {
            b.iter(|| {
                let (mu, var) = support_moments(std::hint::black_box(q));
                normal_survival_with_continuity(mu, var, msup)
            })
        });
        group.bench_with_input(BenchmarkId::new("poisson_approx", n), &q, |b, q| {
            b.iter(|| {
                let (mu, _) = support_moments(std::hint::black_box(q));
                poisson_survival(msup, mu)
            })
        });
        group.bench_with_input(BenchmarkId::new("chernoff_bound", n), &q, |b, q| {
            b.iter(|| {
                let (mu, _) = support_moments(std::hint::black_box(q));
                chernoff_upper_bound(mu, msup as f64)
            })
        });
    }
    group.finish();
}

/// Ablation A-1: where does FFT convolution overtake the naive product-sum?
fn bench_conv_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_crossover");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for &n in &[32usize, 128, 256, 512, 2048] {
        let a = probs(n);
        let b_ = probs(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| convolve_naive(std::hint::black_box(&a), std::hint::black_box(&b_)))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |bch, _| {
            bch.iter(|| convolve_fft(std::hint::black_box(&a), std::hint::black_box(&b_)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_conv_crossover);
criterion_main!(benches);
