//! Sharded-support-engine benchmark: shard-width sweep over a huge-N /
//! small-I fixture with hard tid locality (`ufim_data::benchmarks::
//! regional`), demonstrating the zone maps pruning whole shards.
//!
//! Like `bench_kernels`, the vendored criterion shim cannot export
//! measurements, so this is a hand-rolled `harness = false` binary that
//! emits a `BENCH_shards.json` snapshot (`--json-out DIR`) through
//! `ufim_bench::json`, joining the CI `json-compare` regression gate.
//! Strict fields (`intersections`, `num_itemsets`) come from one counted
//! mining run per configuration and are bit-identical across machines,
//! pool sizes and `--smoke`; the shard counters ride along as advisory
//! fields. On top of the snapshot, the binary *asserts* the acceptance
//! floor: at the low threshold, zone maps must skip at least 30% of shard
//! evaluations on the default-width sharded run.
//!
//! Flags: `--json-out DIR` writes the snapshot; `--smoke` shrinks the
//! timing loop (counters unchanged); unknown flags (cargo's `--bench`)
//! are ignored.

use std::time::Instant;
use ufim_bench::json::{JsonRun, JsonSnapshot};
use ufim_core::prelude::*;
use ufim_miners::common::{mine_level_wise_with_plan, ExpectedSupport};

const SEED: u64 = 11;
/// Four default-width (65,536-tid) shards.
const N: usize = 262_144;
/// Regional items: one 32,768-tid band each.
const REGIONS: u32 = 8;
/// Low ratio so the regional singletons and their pairs survive — the
/// pruning has to come from the zone maps, not the threshold.
const MIN_ESUP_RATIO: f64 = 0.01;

/// One mining run: counted once (deterministic fields), timed over a
/// small loop.
fn run(
    db: &UncertainDatabase,
    engine: EngineKind,
    plan: ShardPlan,
    label: &str,
    smoke: bool,
) -> JsonRun {
    let threshold = MIN_ESUP_RATIO * db.num_transactions() as f64;
    let mine = || mine_level_wise_with_plan(db, ExpectedSupport::new(threshold), engine, plan);
    let result = mine();
    let iters = if smoke { 1 } else { 3 };
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(mine());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let (shards_evaluated, shards_pruned) = JsonRun::shard_counters(&result.stats);
    JsonRun {
        workload: format!("N=262144,R=8,{label}"),
        algorithm: "level-wise esup".to_string(),
        engine: engine.name().to_string(),
        wall_ms,
        peak_bytes: 0,
        peak_memo_bytes: result.stats.peak_memo_bytes,
        intersections: result.stats.intersections,
        num_itemsets: result.len() as u64,
        shards_evaluated,
        shards_pruned,
        ..Default::default()
    }
}

fn main() {
    let mut smoke = false;
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json-out" => {
                json_out = Some(args.next().expect("--json-out needs a directory").into());
            }
            _ => {} // cargo bench passes --bench; ignore unknown flags
        }
    }

    let db = ufim_data::benchmarks::regional(N, REGIONS, SEED);
    let mut snap = JsonSnapshot::new("shards", 1.0, SEED);

    // Width sweep on the vertical backend: one shard spanning the whole
    // database (the unsharded reference — `4096` chunks cover all 262,144
    // tids), the 4-shard default, and finer partitions down to 16 shards.
    let widths = [
        (
            "width=unsharded",
            ShardPlan::with_width_chunks(N.div_ceil(64)),
        ),
        ("width=2048", ShardPlan::with_width_chunks(2048)),
        ("width=1024(default)", ShardPlan::for_transactions(N)),
        ("width=256", ShardPlan::with_width_chunks(256)),
    ];
    for (label, plan) in widths {
        snap.runs
            .push(run(&db, EngineKind::Vertical, plan, label, smoke));
    }
    // The diffset backend runs per-shard delta chains in sharded mode;
    // one default-width row keeps it in the gate.
    snap.runs.push(run(
        &db,
        EngineKind::Diffset,
        ShardPlan::for_transactions(N),
        "width=1024(default)",
        smoke,
    ));

    let mut pruned_floor_checked = false;
    for r in &snap.runs {
        let pruning = match (r.shards_evaluated, r.shards_pruned) {
            (Some(e), Some(p)) if e + p > 0 => {
                let frac = p as f64 / (e + p) as f64;
                // The acceptance floor: on the default-width low-threshold
                // run, zone maps must skip ≥30% of shard evaluations.
                if r.workload.contains("default") {
                    assert!(
                        frac >= 0.30,
                        "{}: zone maps pruned only {:.1}% of shard evaluations",
                        r.workload,
                        frac * 100.0
                    );
                    pruned_floor_checked = true;
                }
                format!("  pruned {p}/{} ({:.1}%)", e + p, frac * 100.0)
            }
            _ => String::new(),
        };
        println!(
            "{:<32} {:<10} {:>10.3} ms  (intersections {:>7}, itemsets {:>3}){pruning}",
            r.workload, r.engine, r.wall_ms, r.intersections, r.num_itemsets
        );
    }
    assert!(
        pruned_floor_checked,
        "no default-width sharded run in the sweep"
    );

    if let Some(dir) = json_out {
        match snap.write(&dir) {
            Some(path) => println!("wrote {}", path.display()),
            None => std::process::exit(1),
        }
    }
}
