//! Criterion micro-benchmarks backing Figure 5: the exact probabilistic
//! miners, isolating the two paper-claimed effects — DC vs DP kernel cost
//! and the Chernoff-bound pruning benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ufim_data::Benchmark;
use ufim_miners::Algorithm;

const SCALE: f64 = 0.002;
const SEED: u64 = 42;

fn bench_exact_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_exact_prob");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for bench in [Benchmark::Accident, Benchmark::Kosarak] {
        let db = bench.generate(SCALE, SEED);
        let (min_sup, pft) = match bench {
            Benchmark::Accident => (0.4, 0.9),
            _ => (0.005, 0.9),
        };
        for algo in Algorithm::EXACT_PROBABILISTIC {
            let miner = algo.probabilistic_miner().unwrap();
            group.bench_with_input(BenchmarkId::new(algo.name(), bench.name()), &db, |b, db| {
                b.iter(|| {
                    miner
                        .mine_probabilistic_raw(std::hint::black_box(db), min_sup, pft)
                        .unwrap()
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact_miners);
criterion_main!(benches);
