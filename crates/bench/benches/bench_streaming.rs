//! Sliding-window streaming benchmark: sustained ingest through the
//! incremental miner versus re-mining the window from scratch at every
//! checkpoint.
//!
//! A fixed synthetic stream slides through a 4,096-slot window in eight
//! expire/append rounds of 256 transactions each. For every support
//! backend (and additionally a forced multi-shard plan on the columnar
//! ones), one counted pass drives the [`IncrementalMiner`] and the batch
//! oracle side by side, asserting at *every* checkpoint that the
//! incremental records are identical to the from-scratch mine — the
//! incremental contract, enforced in-binary. The same pass accumulates the
//! deterministic work counters, and the binary asserts the acceptance
//! floor: across the stream phase, the incremental path must evaluate
//! **strictly fewer** candidates than the batch oracle, at no more than
//! 90% of the batch count (measured ratios sit far below; the bound only
//! catches a collapse of the border reuse).
//!
//! Like `bench_shards`, the vendored criterion shim cannot export
//! measurements, so this is a hand-rolled `harness = false` binary that
//! emits a `BENCH_streaming.json` snapshot (`--json-out DIR`) through
//! `ufim_bench::json`. Strict fields (`intersections`, `num_itemsets`)
//! come from the counted pass and are bit-identical across machines and
//! pool sizes; the throughput (`wall_ms`, from which tx/sec derives) and
//! the border-tracker counters ride along as advisory fields.
//!
//! With `--gate` the binary additionally asserts the **wall-clock
//! contract** of memo-preserving delta evaluation: on the columnar
//! backends (vertical and diffset, default plan and forced width-16
//! shards), the incremental pass must finish in ≤ 1.0× the batch
//! re-mine's wall-clock on this cheap esup+var fixture at 6% churn —
//! the memo patch walk plus warm-memo short-circuit has to *pay for
//! itself*, not just shrink candidate counts. The gate times both
//! sides over the full (non-smoke) iteration budget and compares
//! best-of-N, so a single scheduler hiccup cannot flip the verdict.
//!
//! Flags: `--json-out DIR` writes the snapshot; `--smoke` shrinks the
//! timing loop (counters unchanged); `--gate` enables the wall-clock
//! assertion above; unknown flags (cargo's `--bench`) are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ufim_bench::json::{JsonRun, JsonSnapshot};
use ufim_core::prelude::*;
use ufim_miners::common::{mine_level_wise_with_plan, ExpectedSupport, IncrementalMiner};

const SEED: u64 = 17;
/// Window capacity (slots — the snapshot's constant transaction count).
const CAPACITY: usize = 4_096;
const ITEMS: u32 = 12;
/// Expire/append burst per round.
const BATCH: usize = 256;
/// Stream-phase rounds after the initial fill.
const ROUNDS: usize = 8;
/// Expected-support threshold ratio: singletons and most pairs stay
/// frequent on the dense fixture, triples fall below — a live border.
const MIN_ESUP_RATIO: f64 = 0.05;

/// The whole stream, synthesized once: the initial fill plus every round's
/// arrivals (dense fixture, ~35% density, confident readings).
fn stream() -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..CAPACITY + ROUNDS * BATCH)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..ITEMS)
                .filter_map(|i| {
                    if rng.gen_bool(0.35) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect()
}

/// Accumulated work counters of one side of the counted pass.
#[derive(Default)]
struct Tally {
    candidates: u64,
    intersections: u64,
    peak_memo: u64,
    rejudged: u64,
    skipped: u64,
    patched: u64,
    rebuilt: u64,
}

impl Tally {
    fn absorb(&mut self, stats: &MinerStats) {
        self.candidates += stats.candidates_evaluated;
        self.intersections += stats.intersections;
        self.peak_memo = self.peak_memo.max(stats.peak_memo_bytes);
        self.rejudged += stats.border_rejudged;
        self.skipped += stats.border_skipped;
        self.patched += stats.memo_patched;
        self.rebuilt += stats.memo_rebuilt;
    }
}

/// One counted pass: incremental and batch side by side, record-equality
/// asserted at every checkpoint. Returns `(incremental, batch, final
/// result size)`.
fn counted_pass(
    txs: &[Transaction],
    engine: EngineKind,
    plan: ShardPlan,
    threshold: f64,
) -> (Tally, Tally, u64) {
    let window = WindowedDatabase::new(CAPACITY, ITEMS);
    let mut miner = IncrementalMiner::with_plan(
        window,
        ExpectedSupport::with_variance(threshold),
        engine,
        plan,
    );
    let (mut inc, mut batch) = (Tally::default(), Tally::default());
    let mut stream = txs.iter().cloned();
    for t in stream.by_ref().take(CAPACITY) {
        miner.append(t);
    }
    let check =
        |miner: &mut IncrementalMiner<ExpectedSupport>, inc: &mut Tally, batch: &mut Tally| {
            let result = miner.refresh();
            inc.absorb(&result.stats);
            let oracle = mine_level_wise_with_plan(
                &miner.window().snapshot(),
                ExpectedSupport::with_variance(threshold),
                engine,
                plan,
            );
            batch.absorb(&oracle.stats);
            assert_eq!(
                miner.result().itemsets,
                oracle.itemsets,
                "{engine}: incremental diverged from the batch oracle"
            );
            oracle.len() as u64
        };
    // Cold mine — identical work on both sides by construction.
    check(&mut miner, &mut inc, &mut batch);
    let mut final_size = 0;
    for _ in 0..ROUNDS {
        miner.expire_oldest(BATCH);
        for t in stream.by_ref().take(BATCH) {
            miner.append(t);
        }
        final_size = check(&mut miner, &mut inc, &mut batch);
    }
    (inc, batch, final_size)
}

/// Timed replay of one side: `(mean_ms, best_ms)` over `iters`
/// repetitions. `incremental == false` re-mines the snapshot at every
/// checkpoint instead of refreshing. The mean is what the snapshot
/// reports; the best-of-N is what the `--gate` comparison uses (robust
/// to a one-off scheduler stall inflating a single repetition).
fn timed_pass(
    txs: &[Transaction],
    engine: EngineKind,
    plan: ShardPlan,
    threshold: f64,
    incremental: bool,
    iters: usize,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let window = WindowedDatabase::new(CAPACITY, ITEMS);
        let mut miner = IncrementalMiner::with_plan(
            window,
            ExpectedSupport::with_variance(threshold),
            engine,
            plan,
        );
        let mut stream = txs.iter().cloned();
        for t in stream.by_ref().take(CAPACITY) {
            miner.append(t);
        }
        let mine = |miner: &mut IncrementalMiner<ExpectedSupport>| {
            if incremental {
                miner.refresh();
            } else {
                std::hint::black_box(mine_level_wise_with_plan(
                    &miner.window().snapshot(),
                    ExpectedSupport::with_variance(threshold),
                    engine,
                    plan,
                ));
            }
        };
        mine(&mut miner);
        for _ in 0..ROUNDS {
            miner.expire_oldest(BATCH);
            for t in stream.by_ref().take(BATCH) {
                miner.append(t);
            }
            mine(&mut miner);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        total += ms;
        best = best.min(ms);
    }
    (total / iters as f64, best)
}

fn main() {
    let mut smoke = false;
    let mut gate = false;
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            "--json-out" => {
                json_out = Some(args.next().expect("--json-out needs a directory").into());
            }
            _ => {} // cargo bench passes --bench; ignore unknown flags
        }
    }

    let txs = stream();
    let threshold = MIN_ESUP_RATIO * CAPACITY as f64;
    // The gate needs a stable best-of-N; never let --smoke starve it.
    let iters = if smoke && !gate { 1 } else { 3 };
    let streamed = (ROUNDS * BATCH) as f64;
    let mut snap = JsonSnapshot::new("streaming", 1.0, SEED);

    // Every backend on the default plan, plus the columnar backends under
    // forced 1,024-tid shards (delta composition across shard boundaries).
    let mut configs: Vec<(String, EngineKind, ShardPlan)> = EngineKind::ALL
        .into_iter()
        .map(|e| (String::new(), e, ShardPlan::for_transactions(CAPACITY)))
        .collect();
    for e in [EngineKind::Vertical, EngineKind::Diffset] {
        configs.push((",width=16".into(), e, ShardPlan::with_width_chunks(16)));
    }

    for (suffix, engine, plan) in configs {
        let workload = format!("N={CAPACITY},rounds={ROUNDS},batch={BATCH}{suffix}");
        let (inc, batch, num_itemsets) = counted_pass(&txs, engine, plan, threshold);
        // The acceptance floor: border reuse must keep the incremental
        // path strictly under the batch oracle's candidate workload.
        let ratio = inc.candidates as f64 / batch.candidates as f64;
        assert!(
            inc.candidates < batch.candidates && ratio <= 0.90,
            "{workload} {engine}: incremental evaluated {} candidates vs batch {} \
             (ratio {ratio:.2} > 0.90) — border reuse collapsed",
            inc.candidates,
            batch.candidates
        );
        let mut best = [0.0f64; 2];
        for (side, (algorithm, tally, incremental)) in [
            ("incremental", &inc, true),
            ("batch re-mine", &batch, false),
        ]
        .into_iter()
        .enumerate()
        {
            let (wall_ms, best_ms) = timed_pass(&txs, engine, plan, threshold, incremental, iters);
            best[side] = best_ms;
            println!(
                "{workload:<34} {:<10} {algorithm:<14} {wall_ms:>9.2} ms  \
                 ({:.0} tx/sec, candidates {:>5}, intersections {:>6}, itemsets {num_itemsets})",
                engine.name(),
                streamed / (wall_ms / 1000.0),
                tally.candidates,
                tally.intersections,
            );
            snap.runs.push(JsonRun {
                workload: workload.clone(),
                algorithm: algorithm.to_string(),
                engine: engine.name().to_string(),
                wall_ms,
                peak_bytes: 0,
                peak_memo_bytes: tally.peak_memo,
                intersections: tally.intersections,
                num_itemsets,
                shards_evaluated: None,
                shards_pruned: None,
                border_rejudged: incremental.then_some(tally.rejudged),
                border_skipped: incremental.then_some(tally.skipped),
                memo_patched: incremental.then_some(tally.patched),
                memo_rebuilt: incremental.then_some(tally.rebuilt),
                ..Default::default()
            });
        }
        println!(
            "{workload:<34} {:<10} candidate ratio {ratio:.2} (border re-judged {}, reused {}; \
             memo patched {}, rebuilt {})",
            engine.name(),
            inc.rejudged,
            inc.skipped,
            inc.patched,
            inc.rebuilt
        );
        // The wall-clock contract (--gate): on the columnar backends the
        // warm-memo path must actually be faster, not merely do less
        // counted work. Horizontal keeps no engine memo, so it only ever
        // rides the candidate-ratio floor above.
        let columnar = matches!(engine, EngineKind::Vertical | EngineKind::Diffset);
        if gate && columnar {
            let speedup = best[0] / best[1];
            println!(
                "{workload:<34} {:<10} wall-clock gate: incremental {:.2} ms vs batch {:.2} ms \
                 ({speedup:.2}x, limit 1.00x)",
                engine.name(),
                best[0],
                best[1]
            );
            assert!(
                speedup <= 1.0,
                "{workload} {engine}: incremental best-of-{iters} {:.2} ms exceeded the batch \
                 re-mine's {:.2} ms ({speedup:.2}x > 1.00x) — memo patching stopped paying off",
                best[0],
                best[1]
            );
        }
    }

    if let Some(dir) = json_out {
        match snap.write(&dir) {
            Some(path) => println!("wrote {}", path.display()),
            None => std::process::exit(1),
        }
    }
}
