//! Peak-memory head-to-head of the columnar support backends on a dense
//! fig4-style workload — the memory counterpart of `bench_engines.rs`.
//!
//! The vertical backend's prefix memo keeps whole prob-vectors for an
//! entire level of frequent prefixes; the diffset backend keeps per-node
//! deltas (plus one transient reconstructed prefix vector per group).
//! Dense data is exactly where the difference shows: almost every tid
//! survives every extension, so the deltas are tiny while the whole
//! vectors stay ~N long. Two instruments are reported per backend:
//!
//! * the allocator-level peak (`ufim_metrics::alloc::measure_peak`, the
//!   paper's "Memory Cost" metric) of the full mining run, and
//! * the engine-level memo peak (`SupportEngine::peak_memo_bytes`,
//!   surfaced as `MinerStats::peak_memo_bytes`), which isolates the
//!   structure the backends actually disagree about.
//!
//! The `memory_guard` group asserts — outside timing — that the diffset
//! backend's memo peak undercuts the vertical backend's on this workload,
//! and that all backends return identical results.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use ufim_core::prelude::*;
use ufim_miners::UApriori;

/// The paper's memory metric needs a counting allocator installed in the
/// process that runs the miners; criterion benches are separate binaries,
/// so each memory bench installs its own.
#[global_allocator]
static ALLOC: ufim_metrics::CountingAllocator = ufim_metrics::CountingAllocator::new();

/// Same dense generator as `bench_engines.rs`: every item appears in
/// `density` of the transactions with a high existence probability.
fn dense_db(transactions: usize, items: u32, density: f64, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = (0..transactions)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..items)
                .filter_map(|i| {
                    if rng.gen_bool(density) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

/// One measured `UApriori` run per backend: `(engine, allocator peak,
/// engine memo peak bytes, #frequent)`.
fn measure(db: &UncertainDatabase, min_esup: f64) -> Vec<(EngineKind, usize, u64, usize)> {
    EngineKind::ALL
        .into_iter()
        .map(|engine| {
            let miner = UApriori::with_engine(engine);
            let (result, alloc_peak) = ufim_metrics::alloc::measure_peak(|| {
                miner.mine_expected_ratio(db, min_esup).unwrap()
            });
            (
                engine,
                alloc_peak,
                result.stats.peak_memo_bytes,
                result.len(),
            )
        })
        .collect()
}

fn bench_memory_backends(c: &mut Criterion) {
    // All work happens inside the bench closure so a `-- memory_guard`
    // filter (as CI passes) skips the three full 20k-transaction runs.
    let mut group = c.benchmark_group("memory_report");
    group
        .sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    group.bench_function("printed", |b| {
        let db = dense_db(20_000, 24, 0.4, 7);
        let min_esup = 0.02;
        println!("\nbench_memory: UApriori dense N=20k, I=24, d=0.4, min_esup={min_esup}");
        let runs = measure(&db, min_esup);
        for (engine, alloc_peak, memo, found) in &runs {
            println!(
                "  {:<10}  alloc peak {:>9.2} MB   engine memo peak {:>9.2} MB   #freq {}",
                engine.name(),
                *alloc_peak as f64 / 1048576.0,
                *memo as f64 / 1048576.0,
                found
            );
        }
        // The cheap timed body keeps criterion's harness satisfied; the
        // numbers above are the artifact.
        b.iter(|| runs.len())
    });
    group.finish();
}

/// Guard asserted outside timing: the diffset memo must strictly undercut
/// the vertical memo on the dense workload, with identical results.
fn bench_memory_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_guard");
    group
        .sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    group.bench_function("memo_undercuts", |b| {
        let db = dense_db(4_000, 16, 0.4, 11);
        let min_esup = 0.05;
        let runs = measure(&db, min_esup);
        let (_, _, _, reference) = runs[0];
        for (engine, _, _, found) in &runs {
            assert_eq!(*found, reference, "{engine} diverges on the result size");
        }
        let vertical = runs
            .iter()
            .find(|(e, ..)| *e == EngineKind::Vertical)
            .unwrap()
            .2;
        let diffset = runs
            .iter()
            .find(|(e, ..)| *e == EngineKind::Diffset)
            .unwrap()
            .2;
        assert!(
            diffset < vertical,
            "diffset memo peak ({diffset} B) must undercut vertical ({vertical} B) on dense data"
        );
        println!(
            "memory_guard: diffset memo {diffset} B < vertical memo {vertical} B ({:.1}x smaller)",
            vertical as f64 / diffset as f64
        );
        b.iter(|| vertical + diffset)
    });
    // Same guard under a forced multi-shard plan: the diffset backend's
    // per-shard delta chains must keep the memory edge when sharding
    // engages (it used to fall back to fragment tidsets there).
    group.bench_function("memo_undercuts_sharded", |b| {
        use ufim_miners::common::{mine_level_wise_with_plan, ExpectedSupport};
        let db = dense_db(4_000, 16, 0.4, 11);
        let threshold = 0.05 * db.num_transactions() as f64;
        let plan = ShardPlan::with_width_chunks(16); // 1024-tid shards → 4
        let runs: Vec<(EngineKind, u64, usize)> = [EngineKind::Vertical, EngineKind::Diffset]
            .into_iter()
            .map(|engine| {
                let result =
                    mine_level_wise_with_plan(&db, ExpectedSupport::new(threshold), engine, plan);
                assert!(
                    result.stats.shards_evaluated > 0,
                    "{engine:?}: forced plan must engage sharded evaluation"
                );
                (engine, result.stats.peak_memo_bytes, result.len())
            })
            .collect();
        assert_eq!(
            runs[0].2, runs[1].2,
            "sharded engines diverge on result size"
        );
        let (vertical, diffset) = (runs[0].1, runs[1].1);
        assert!(
            diffset < vertical,
            "sharded diffset memo peak ({diffset} B) must undercut vertical ({vertical} B) \
             via per-shard delta chains"
        );
        println!(
            "memory_guard (sharded): diffset memo {diffset} B < vertical memo {vertical} B \
             ({:.1}x smaller)",
            vertical as f64 / diffset as f64
        );
        b.iter(|| vertical + diffset)
    });
    // Streaming guard: with memo-preserving delta evaluation the engine
    // retains its memo across refreshes, so the per-refresh
    // `peak_memo_bytes` must be a *monotone non-decreasing* cross-refresh
    // peak (it used to reset with the memo clear on every window step)
    // and every warm refresh must report at least the cold mine's peak —
    // the retained lattice plus its block-moment partials never leaves
    // the engine's accounting.
    group.bench_function("streaming_peak_monotone", |b| {
        use ufim_miners::common::{ExpectedSupport, IncrementalMiner};
        let db = dense_db(2_048, 16, 0.4, 11);
        let threshold = 0.05 * 1_024.0;
        let mut last = 0u64;
        for engine in [EngineKind::Vertical, EngineKind::Diffset] {
            let window = WindowedDatabase::new(1_024, 16);
            let mut miner =
                IncrementalMiner::new(window, ExpectedSupport::with_variance(threshold), engine);
            let mut stream = db.transactions().iter().cloned();
            for t in stream.by_ref().take(1_024) {
                miner.append(t);
            }
            let cold = miner.refresh().stats.peak_memo_bytes;
            assert!(cold > 0, "{engine:?}: cold mine must charge the memo peak");
            let mut peaks = vec![cold];
            for _ in 0..8 {
                miner.expire_oldest(128);
                for t in stream.by_ref().take(128) {
                    miner.append(t);
                }
                peaks.push(miner.refresh().stats.peak_memo_bytes);
            }
            for (i, pair) in peaks.windows(2).enumerate() {
                assert!(
                    pair[1] >= pair[0],
                    "{engine:?}: peak_memo_bytes fell {} -> {} at refresh {} — \
                     the cross-refresh peak reset with a memo clear",
                    pair[0],
                    pair[1],
                    i + 1
                );
            }
            println!(
                "memory_guard (streaming): {engine:?} memo peak {} B cold -> {} B after 8 \
                 refreshes (monotone)",
                cold,
                peaks[peaks.len() - 1]
            );
            last = peaks[peaks.len() - 1];
        }
        b.iter(|| last)
    });
    group.finish();
}

criterion_group!(benches, bench_memory_backends, bench_memory_guard);
criterion_main!(benches);
