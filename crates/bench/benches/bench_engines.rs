//! Head-to-head of the two support backends on a fig4-style dense
//! workload: the same miner, the same database, the same thresholds — only
//! the support-computation layer swapped. This is the microbenchmark behind
//! the vertical engine's headline claim; the `ufim-bench --engine both`
//! harness sweeps the full figure axes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use ufim_core::prelude::*;
use ufim_miners::{DcMiner, UApriori};

/// A dense synthetic uncertain database: every item appears in `density` of
/// the transactions with a high existence probability, so mining runs
/// several levels deep — the regime where per-level re-scans hurt most.
fn dense_db(transactions: usize, items: u32, density: f64, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = (0..transactions)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..items)
                .filter_map(|i| {
                    if rng.gen_bool(density) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

fn bench_esup_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_uapriori_dense");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let db = dense_db(20_000, 24, 0.4, 7);
    // esup(singleton) ≈ 20k·0.4·0.75 = 6000; pairs ≈ 1800; triples ≈ 540.
    // min_esup = 0.02 (threshold 400) keeps 3–4 levels alive.
    let min_esup = 0.02;
    for engine in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::new(engine.name(), "N=20k,I=24,d=0.4"),
            &db,
            |b, db| {
                let miner = UApriori::with_engine(engine);
                b.iter(|| {
                    miner
                        .mine_expected_ratio(std::hint::black_box(db), min_esup)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_dcb_dense");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let db = dense_db(4_000, 16, 0.4, 11);
    let params = MiningParams::new(0.05, 0.5).unwrap();
    for engine in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::new(engine.name(), "N=4k,I=16,d=0.4"),
            &db,
            |b, db| {
                let miner = DcMiner::with_pruning();
                let params = params.with_engine(engine);
                b.iter(|| {
                    miner
                        .mine_probabilistic(std::hint::black_box(db), params)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

/// Sanity companion to the timing: all backends must return identical
/// results on the benchmarked workloads (checked once, outside timing).
fn bench_equivalence_guard(c: &mut Criterion) {
    let db = dense_db(2_000, 16, 0.4, 7);
    let h = UApriori::with_engine(EngineKind::Horizontal)
        .mine_expected_ratio(&db, 0.02)
        .unwrap();
    let v = UApriori::with_engine(EngineKind::Vertical)
        .mine_expected_ratio(&db, 0.02)
        .unwrap();
    assert_eq!(h.sorted_itemsets(), v.sorted_itemsets());
    let d = UApriori::with_engine(EngineKind::Diffset)
        .mine_expected_ratio(&db, 0.02)
        .unwrap();
    assert_eq!(h.sorted_itemsets(), d.sorted_itemsets());
    let mut group = c.benchmark_group("engines_guard");
    group
        .sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    group.bench_function("results_identical", |b| b.iter(|| h.len() + v.len()));
    group.finish();
}

criterion_group!(
    benches,
    bench_esup_backends,
    bench_exact_backends,
    bench_equivalence_guard
);
criterion_main!(benches);
