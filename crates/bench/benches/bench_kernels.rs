//! Microbenchmarks of the chunked `ProbVector` kernels: intersect /
//! diff_extend / apply_diff across operand length ratios (1:1, 1:16,
//! 1:256) and chunk densities, plus the galloping-vs-merge-join
//! comparison on the skewed pair and the dense UApriori anchor the
//! ROADMAP's ≥2× target is measured on.
//!
//! The vendored criterion shim cannot export measurements, so this bench
//! is a hand-rolled `harness = false` binary that times the kernels
//! itself and emits a `BENCH_kernels.json` snapshot (`--json-out DIR`)
//! through `ufim_bench::json` — the same format the fig4 harness writes,
//! so the CI `json-compare` gate covers it. Deterministic counters:
//! `intersections` records the operands' total nonzero units (kernel
//! rows) or `MinerStats::intersections` (the anchor row); `num_itemsets`
//! the result's nonzero count — both independent of timing iterations,
//! so `--smoke` (CI) and full runs produce identical strict fields.
//!
//! Flags: `--json-out DIR` writes the snapshot; `--smoke` shrinks the
//! timing budget (counters unchanged); criterion-style flags cargo
//! passes (`--bench`) are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use ufim_bench::json::{JsonRun, JsonSnapshot};
use ufim_core::prelude::*;
use ufim_core::{ProbVector, ScratchSpace};
use ufim_miners::UApriori;

const SEED: u64 = 7;
/// Long-side operand length for the kernel grid.
const BASE_LEN: usize = 1 << 16;

/// Sorted unique `(tid, prob)` pairs: `len` tids stratified over
/// `[0, len * spread)` (spread 1 = consecutive tids = full chunks;
/// spread 16 ≈ 4 nonzeros per 64-tid chunk = packed).
fn gen_pairs(rng: &mut StdRng, len: usize, spread: usize) -> (Vec<u32>, Vec<f64>) {
    let step = spread.max(1) as u32;
    let tids: Vec<u32> = (0..len as u32)
        .map(|i| {
            if step == 1 {
                i
            } else {
                i * step + rng.gen_range(0..step)
            }
        })
        .collect();
    let probs: Vec<f64> = (0..len).map(|_| rng.gen_range(0.5..=1.0)).collect();
    (tids, probs)
}

fn build(rng: &mut StdRng, len: usize, spread: usize) -> ProbVector {
    let (tids, probs) = gen_pairs(rng, len, spread);
    ProbVector::from_parts(tids, probs)
}

/// Times `f` in a fixed-budget loop (one warmup call first), returning
/// mean milliseconds per call.
fn time_ms<F: FnMut()>(mut f: F, smoke: bool) -> f64 {
    f();
    let budget = if smoke {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(150)
    };
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1000.0 / iters as f64
}

/// One kernel row: `workload` is the grid point, `algorithm` the kernel.
fn kernel_run(
    workload: &str,
    algorithm: &str,
    wall_ms: f64,
    input_units: usize,
    result_count: usize,
) -> JsonRun {
    JsonRun {
        workload: workload.to_string(),
        algorithm: algorithm.to_string(),
        engine: "kernel".to_string(),
        wall_ms,
        peak_bytes: 0,
        peak_memo_bytes: 0,
        intersections: input_units as u64,
        num_itemsets: result_count as u64,
        ..Default::default()
    }
}

/// The dense synthetic database of `bench_engines`' UApriori anchor
/// (N=20k, I=24, d=0.4, seed 7) — duplicated here because the criterion
/// shim over there cannot export its measurements.
fn anchor_db() -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(7);
    let t = (0..20_000)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..24)
                .filter_map(|i| {
                    if rng.gen_bool(0.4) {
                        Some((i, rng.gen_range(0.5..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(t, 24)
}

fn main() {
    let mut smoke = false;
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json-out" => {
                json_out = Some(args.next().expect("--json-out needs a directory").into());
            }
            _ => {} // cargo bench passes --bench; ignore unknown flags
        }
    }

    let mut snap = JsonSnapshot::new("kernels", 1.0, SEED);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut scratch = ScratchSpace::new();

    // Kernel grid: length ratios × chunk densities. The long side's
    // layout follows the density label; the short side spreads over the
    // same tid universe, so skewed ratios also skew the chunk
    // directories (the galloping regime).
    for &(ratio, ratio_label) in &[(1usize, "1:1"), (16, "1:16"), (256, "1:256")] {
        for &(spread, density) in &[(16usize, "sparse"), (1, "dense")] {
            let workload = format!("ratio={ratio_label},density={density}");
            let long = build(&mut rng, BASE_LEN, spread);
            // Short side over the same universe: spread scaled by ratio.
            let short = build(&mut rng, BASE_LEN / ratio, spread * ratio);
            let units = short.len() + long.len();

            let ms = time_ms(
                || {
                    std::hint::black_box(short.intersect_into(&long, &mut scratch));
                },
                smoke,
            );
            let count = scratch.len();
            snap.runs
                .push(kernel_run(&workload, "intersect_into", ms, units, count));

            let ms = time_ms(
                || {
                    std::hint::black_box(short.intersect_stats(&long));
                },
                smoke,
            );
            snap.runs
                .push(kernel_run(&workload, "intersect_stats", ms, units, count));

            let ms = time_ms(
                || {
                    std::hint::black_box(short.diff_extend_into(&long, &mut scratch));
                },
                smoke,
            );
            let dropped = scratch.dropped().len();
            snap.runs.push(kernel_run(
                &workload,
                "diff_extend_into",
                ms,
                units,
                dropped,
            ));

            let (diff, ..) = short.diff_extend(&long);
            let mut out = ProbVector::new();
            let ms = time_ms(
                || {
                    short.apply_diff_into(&diff, &long, &mut out);
                    std::hint::black_box(out.len());
                },
                smoke,
            );
            snap.runs
                .push(kernel_run(&workload, "apply_diff_into", ms, units, count));
        }
    }

    // Galloping vs merge-join. Spread 128 (≈0.5 nonzeros per 64-tid
    // window) leaves both chunk directories gappy — neither side is
    // contiguous, so the direct-indexed fast paths cannot engage and the
    // skewed pair exercises true galloping directory search. The 1:1 pair
    // is the no-regression control: below the ratio cutoff both labels
    // run the same scalar merge-join.
    for &(ratio, ratio_label) in &[(1usize, "1:1"), (256, "1:256")] {
        let workload = format!("ratio={ratio_label},density=scatter");
        let long = build(&mut rng, BASE_LEN, 128);
        let short = build(&mut rng, BASE_LEN / ratio, 128 * ratio);
        let units = short.len() + long.len();
        let count = short.intersect_stats(&long).2;
        let ms = time_ms(
            || {
                std::hint::black_box(short.intersect_stats(&long));
            },
            smoke,
        );
        snap.runs
            .push(kernel_run(&workload, "stats_gallop", ms, units, count));
        let ms = time_ms(
            || {
                std::hint::black_box(short.intersect_stats_merge_join(&long));
            },
            smoke,
        );
        snap.runs
            .push(kernel_run(&workload, "stats_merge_join", ms, units, count));
    }

    // Anchor decomposition: the dense UApriori anchor pays for both the
    // statistics (esup/var/count) and, since the memoizing engine of PR 6,
    // the materialization of every surviving tid-list. These rows time the
    // kernels in isolation on the anchor's *actual* singleton postings
    // (~8k dense units a side), so the snapshot separates "how much of the
    // anchor's wall time is stats math" from "how much is building and
    // allocating result vectors" — the split behind the 99.5 ms → ~140 ms
    // move when memoization landed.
    let db = anchor_db();
    {
        let index = VerticalIndex::build(&db);
        let (a, b) = (index.postings(0), index.postings(1));
        let workload = "anchor-postings";
        let units = a.len() + b.len();
        let count = a.intersect_stats(b).2;
        let ms = time_ms(
            || {
                std::hint::black_box(a.intersect_stats(b));
            },
            smoke,
        );
        snap.runs
            .push(kernel_run(workload, "intersect_stats", ms, units, count));
        let ms = time_ms(
            || {
                a.intersect_materialize_into(b, &mut scratch);
                std::hint::black_box(scratch.len());
            },
            smoke,
        );
        snap.runs.push(kernel_run(
            workload,
            "intersect_materialize_into",
            ms,
            units,
            count,
        ));
        let ms = time_ms(
            || {
                std::hint::black_box(a.intersect(b));
            },
            smoke,
        );
        snap.runs
            .push(kernel_run(workload, "intersect_alloc", ms, units, count));
    }

    // The ROADMAP anchor: dense UApriori, vertical engine. Counters come
    // from the mining result (deterministic); wall time is the mean over
    // the timing loop.
    let miner = UApriori::with_engine(EngineKind::Vertical);
    let result = miner.mine_expected_ratio(&db, 0.02).unwrap();
    let iters = if smoke { 1 } else { 5 };
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(
            miner
                .mine_expected_ratio(std::hint::black_box(&db), 0.02)
                .unwrap(),
        );
    }
    let anchor_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let (shards_evaluated, shards_pruned) = JsonRun::shard_counters(&result.stats);
    snap.runs.push(JsonRun {
        workload: "N=20k,I=24,d=0.4".to_string(),
        algorithm: "UApriori".to_string(),
        engine: "vertical".to_string(),
        wall_ms: anchor_ms,
        peak_bytes: 0,
        peak_memo_bytes: result.stats.peak_memo_bytes,
        intersections: result.stats.intersections,
        num_itemsets: result.len() as u64,
        shards_evaluated,
        shards_pruned,
        ..Default::default()
    });

    for r in &snap.runs {
        println!(
            "{:<28} {:<18} {:>10.4} ms  (units {:>7}, result {:>7})",
            r.workload, r.algorithm, r.wall_ms, r.intersections, r.num_itemsets
        );
    }
    if let Some(dir) = json_out {
        match snap.write(&dir) {
            Some(path) => println!("wrote {}", path.display()),
            None => std::process::exit(1),
        }
    }
}
