//! One place tying every benchmark to its published shape (Table 6) and its
//! default experiment parameters (Table 7).

use crate::benchmarks;
use crate::deterministic::DeterministicDatabase;
use crate::prob::{assign_probabilities, ProbabilityModel};
use crate::quest::QuestConfig;
use ufim_core::UncertainDatabase;

/// The five benchmark datasets of the paper's evaluation (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Dense game-state data (FIMI `connect`).
    Connect,
    /// Dense-ish traffic-accident attributes (FIMI `accidents`).
    Accident,
    /// Sparse clickstream over a huge vocabulary (FIMI `kosarak`).
    Kosarak,
    /// Very sparse e-commerce clicks (KDD-Cup 2000 `BMS-WebView` / gazelle).
    Gazelle,
    /// IBM Quest synthetic `T25I15D320k`, the scalability dataset.
    T25I15D320k,
}

/// The characteristics the paper publishes for a dataset (its Table 6 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperShape {
    /// `# of Trans.`
    pub num_transactions: usize,
    /// `# of Items`
    pub num_items: u32,
    /// `Ave. Len.`
    pub avg_len: f64,
    /// `Density`
    pub density: f64,
}

/// The default experiment parameters for a dataset (its Table 7 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkDefaults {
    /// Gaussian probability mean.
    pub mean: f64,
    /// Gaussian probability variance.
    pub variance: f64,
    /// Default `min_sup` (also used as `min_esup` for Definition 2 runs).
    pub min_sup: f64,
    /// Default probabilistic frequent threshold.
    pub pft: f64,
}

impl Benchmark {
    /// All five benchmarks, in the paper's Table 6 order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Connect,
        Benchmark::Accident,
        Benchmark::Kosarak,
        Benchmark::Gazelle,
        Benchmark::T25I15D320k,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Connect => "Connect",
            Benchmark::Accident => "Accident",
            Benchmark::Kosarak => "Kosarak",
            Benchmark::Gazelle => "Gazelle",
            Benchmark::T25I15D320k => "T25I15D320k",
        }
    }

    /// Whether the paper classifies the dataset as dense.
    pub fn is_dense(self) -> bool {
        matches!(self, Benchmark::Connect | Benchmark::Accident)
    }

    /// The Table 6 row.
    pub fn paper_shape(self) -> PaperShape {
        match self {
            Benchmark::Connect => PaperShape {
                num_transactions: 67_557,
                num_items: 129,
                avg_len: 43.0,
                density: 0.33,
            },
            Benchmark::Accident => PaperShape {
                num_transactions: 340_183,
                num_items: 468,
                avg_len: 33.8,
                density: 0.072,
            },
            Benchmark::Kosarak => PaperShape {
                num_transactions: 990_002,
                num_items: 41_270,
                avg_len: 8.1,
                density: 0.000_19,
            },
            Benchmark::Gazelle => PaperShape {
                num_transactions: 59_601,
                num_items: 498,
                avg_len: 2.5,
                density: 0.005,
            },
            Benchmark::T25I15D320k => PaperShape {
                num_transactions: 320_000,
                num_items: 994,
                avg_len: 25.0,
                density: 0.025,
            },
        }
    }

    /// The Table 7 row.
    pub fn defaults(self) -> BenchmarkDefaults {
        match self {
            Benchmark::Connect => BenchmarkDefaults {
                mean: 0.95,
                variance: 0.05,
                min_sup: 0.5,
                pft: 0.9,
            },
            Benchmark::Accident => BenchmarkDefaults {
                mean: 0.5,
                variance: 0.5,
                min_sup: 0.5,
                pft: 0.9,
            },
            Benchmark::Kosarak => BenchmarkDefaults {
                mean: 0.5,
                variance: 0.5,
                min_sup: 0.000_5,
                pft: 0.9,
            },
            Benchmark::Gazelle => BenchmarkDefaults {
                mean: 0.95,
                variance: 0.05,
                min_sup: 0.025,
                pft: 0.9,
            },
            Benchmark::T25I15D320k => BenchmarkDefaults {
                mean: 0.9,
                variance: 0.1,
                min_sup: 0.1,
                pft: 0.9,
            },
        }
    }

    /// The dataset's default Gaussian probability model (Table 7).
    pub fn default_model(self) -> ProbabilityModel {
        let d = self.defaults();
        ProbabilityModel::Gaussian {
            mean: d.mean,
            variance: d.variance,
        }
    }

    /// Generates the deterministic analog at `scale ∈ (0, 1]` of the paper's
    /// transaction count.
    pub fn generate_deterministic(self, scale: f64, seed: u64) -> DeterministicDatabase {
        match self {
            Benchmark::Connect => benchmarks::connect_like(scale, seed),
            Benchmark::Accident => benchmarks::accident_like(scale, seed),
            Benchmark::Kosarak => benchmarks::kosarak_like(scale, seed),
            Benchmark::Gazelle => benchmarks::gazelle_like(scale, seed),
            Benchmark::T25I15D320k => QuestConfig::t25_i15_d320k(scale).generate(seed),
        }
    }

    /// Generates the uncertain database: deterministic analog plus the
    /// Table 7 Gaussian assignment. The probability seed is derived from
    /// `seed` so one seed controls the whole pipeline.
    pub fn generate(self, scale: f64, seed: u64) -> UncertainDatabase {
        let det = self.generate_deterministic(scale, seed);
        assign_probabilities(&det, &self.default_model(), seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Generates with an explicit probability model (Zipf sweeps etc.).
    pub fn generate_with_model(
        self,
        scale: f64,
        seed: u64,
        model: &ProbabilityModel,
    ) -> UncertainDatabase {
        let det = self.generate_deterministic(scale, seed);
        assign_probabilities(&det, model, seed ^ 0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_rows_match_paper() {
        let shape = Benchmark::Kosarak.paper_shape();
        assert_eq!(shape.num_transactions, 990_002);
        assert_eq!(shape.num_items, 41_270);
        assert_eq!(Benchmark::Connect.paper_shape().avg_len, 43.0);
        assert_eq!(
            Benchmark::T25I15D320k.paper_shape().num_transactions,
            320_000
        );
    }

    #[test]
    fn table7_rows_match_paper() {
        let d = Benchmark::Gazelle.defaults();
        assert_eq!((d.mean, d.variance), (0.95, 0.05));
        assert_eq!(d.min_sup, 0.025);
        assert_eq!(d.pft, 0.9);
        assert_eq!(Benchmark::Kosarak.defaults().min_sup, 0.000_5);
        assert_eq!(Benchmark::Accident.defaults().mean, 0.5);
    }

    #[test]
    fn density_classification() {
        assert!(Benchmark::Connect.is_dense());
        assert!(Benchmark::Accident.is_dense());
        assert!(!Benchmark::Kosarak.is_dense());
        assert!(!Benchmark::Gazelle.is_dense());
    }

    #[test]
    fn generate_matches_shape_at_small_scale() {
        for b in [Benchmark::Connect, Benchmark::Gazelle] {
            let shape = b.paper_shape();
            let udb = b.generate(0.01, 123);
            let want_n = (shape.num_transactions as f64 * 0.01).round() as usize;
            assert_eq!(udb.num_transactions(), want_n, "{}", b.name());
            assert_eq!(udb.num_items(), shape.num_items);
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Benchmark::Gazelle.generate(0.01, 5);
        let b = Benchmark::Gazelle.generate(0.01, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_model_produces_sparser_data_at_high_skew() {
        let low = Benchmark::Connect.generate_with_model(0.005, 3, &ProbabilityModel::zipf(0.8));
        let high = Benchmark::Connect.generate_with_model(0.005, 3, &ProbabilityModel::zipf(2.0));
        let units =
            |db: &UncertainDatabase| -> usize { db.transactions().iter().map(|t| t.len()).sum() };
        assert!(
            units(&high) < units(&low),
            "skew 2.0 should drop more units: {} vs {}",
            units(&high),
            units(&low)
        );
    }

    #[test]
    fn names_cover_all() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["Connect", "Accident", "Kosarak", "Gazelle", "T25I15D320k"]
        );
    }
}
