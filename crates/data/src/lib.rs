//! # ufim-data
//!
//! Dataset substrate for the uncertain frequent itemset mining study
//! (Tong et al., VLDB 2012, §4.1).
//!
//! The paper evaluates on five deterministic benchmarks — Connect, Accident,
//! Kosarak, Gazelle (FIMI repository) and the synthetic T25I15D320k — with
//! existence probabilities assigned per item from a Gaussian or Zipf model.
//! The FIMI files are not redistributable, so this crate generates
//! **structure-matched synthetic analogs**: each generator reproduces the
//! published shape of its namesake (Table 6: transaction count, vocabulary,
//! average length, density) and its qualitative item-popularity profile
//! (dense game-state grid for Connect, mixed popularity for Accident,
//! power-law clickstream for Kosarak, short sparse baskets for Gazelle).
//! The substitution preserves exactly the properties the paper's conclusions
//! depend on — density, scale, probability distribution — and is documented
//! in `DESIGN.md` §4.
//!
//! Contents:
//!
//! * [`deterministic`] — the intermediate deterministic database type;
//! * [`benchmarks`] — the four FIMI-analog generators;
//! * [`quest`] — an IBM Quest-style synthetic generator (`T25I15D320k`);
//! * [`prob`] — probability-assignment models (Gaussian, Zipf levels,
//!   uniform, constant) turning deterministic data into uncertain data;
//! * [`registry`] — one enum tying each benchmark to its Table 6 shape and
//!   Table 7 default parameters;
//! * [`fimi`] — reader/writer for FIMI files and the `item:prob` uncertain
//!   extension.
//!
//! Everything is seeded and deterministic: the same `(generator, scale,
//! seed)` triple always produces the same database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod deterministic;
pub mod fimi;
pub mod prob;
pub mod quest;
pub mod registry;
pub mod stats;

pub use deterministic::DeterministicDatabase;
pub use prob::{assign_probabilities, ProbabilityModel};
pub use quest::QuestConfig;
pub use registry::{Benchmark, BenchmarkDefaults, PaperShape};
