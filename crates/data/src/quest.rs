//! IBM Quest-style synthetic transaction generator.
//!
//! The paper's scalability experiments (Figures 4(i)–(j), 5(i)–(j),
//! 6(i)–(j)) run on `T25I15D320k`: average transaction length `T = 25`,
//! average maximal-potential-itemset length `I = 15`, `D = 320 000`
//! transactions over 994 items. This module reimplements the classic
//! Agrawal–Srikant generator (VLDB '94 §4) that produced it:
//!
//! 1. draw `|L|` *maximal potential itemsets*: sizes Poisson-distributed
//!    around `I`, items partially inherited from the previous pattern
//!    (`correlation` fraction) and otherwise uniform, weights exponential;
//! 2. each transaction draws a Poisson(`T`) size and packs weighted-random
//!    patterns, *corrupting* each pattern by dropping items with a
//!    per-pattern corruption level (mean 0.5), half-including patterns that
//!    overflow the remaining budget.

use crate::deterministic::DeterministicDatabase;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ufim_core::ItemId;

/// Configuration of the Quest generator. `Default` is `T25I15` over 994
/// items with 2 000 patterns, the paper's scalability dataset shape.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions (`D`).
    pub num_transactions: usize,
    /// Average transaction size (`T`).
    pub avg_transaction_len: f64,
    /// Average size of maximal potential itemsets (`I`).
    pub avg_pattern_len: f64,
    /// Item vocabulary size (`N`).
    pub num_items: u32,
    /// Number of maximal potential itemsets (`|L|`).
    pub num_patterns: usize,
    /// Fraction of each pattern's items inherited from the previous pattern.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_transactions: 320_000,
            avg_transaction_len: 25.0,
            avg_pattern_len: 15.0,
            num_items: 994,
            num_patterns: 2_000,
            correlation: 0.5,
            corruption_mean: 0.5,
        }
    }
}

impl QuestConfig {
    /// The paper's `T25I15D320k` shape at a given transaction-count scale.
    pub fn t25_i15_d320k(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        QuestConfig {
            num_transactions: ((320_000f64 * scale).round() as usize).max(1),
            ..Default::default()
        }
    }

    /// Runs the generator.
    pub fn generate(&self, seed: u64) -> DeterministicDatabase {
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns = self.build_patterns(&mut rng);
        let weights =
            WeightedIndex::new(patterns.iter().map(|p| p.weight)).expect("positive weights");

        let mut transactions = Vec::with_capacity(self.num_transactions);
        for _ in 0..self.num_transactions {
            let target = sample_poisson(&mut rng, self.avg_transaction_len).max(1);
            let mut t: Vec<ItemId> = Vec::with_capacity(target + 4);
            // Pack corrupted patterns until the size budget is exhausted.
            // The attempt bound guards degenerate configurations.
            let mut attempts = 0;
            while t.len() < target && attempts < 40 {
                attempts += 1;
                let pat = &patterns[weights.sample(&mut rng)];
                let kept: Vec<ItemId> = pat
                    .items
                    .iter()
                    .copied()
                    .filter(|_| !rng.gen_bool(pat.corruption))
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                if t.len() + kept.len() > target + kept.len() / 2 && !t.is_empty() {
                    // Overflowing pattern: keep it anyway half the time
                    // (Agrawal–Srikant rule), otherwise close the transaction.
                    if rng.gen_bool(0.5) {
                        t.extend_from_slice(&kept);
                    }
                    break;
                }
                t.extend_from_slice(&kept);
            }
            if t.is_empty() {
                t.push(rng.gen_range(0..self.num_items));
            }
            transactions.push(t);
        }
        DeterministicDatabase::with_num_items(transactions, self.num_items)
    }

    fn build_patterns(&self, rng: &mut StdRng) -> Vec<Pattern> {
        let mut patterns: Vec<Pattern> = Vec::with_capacity(self.num_patterns);
        for idx in 0..self.num_patterns {
            let len = sample_poisson(rng, self.avg_pattern_len).max(1);
            let mut items: Vec<ItemId> = Vec::with_capacity(len);
            // Inherit a `correlation` fraction from the previous pattern.
            if idx > 0 {
                let prev = &patterns[idx - 1].items;
                let inherit = ((len as f64 * self.correlation) as usize).min(prev.len());
                for &it in prev.iter().take(inherit) {
                    if !items.contains(&it) {
                        items.push(it);
                    }
                }
            }
            while items.len() < len {
                let it = rng.gen_range(0..self.num_items);
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            // Exponential weight with unit mean; corruption level clamped
            // normal around the configured mean.
            let weight = sample_exponential(rng);
            let corruption = (self.corruption_mean + 0.1 * sample_std_normal(rng)).clamp(0.0, 0.95);
            patterns.push(Pattern {
                items,
                weight,
                corruption,
            });
        }
        patterns
    }
}

struct Pattern {
    items: Vec<ItemId>,
    weight: f64,
    corruption: f64,
}

/// Poisson sample by Knuth's product-of-uniforms method (λ is ≤ ~25 here,
/// where the method is fine).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Exponential(1) sample by inversion, bounded away from zero so pattern
/// weights stay valid for `WeightedIndex`.
fn sample_exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln()).max(1e-9)
}

/// Standard normal sample by Box–Muller.
fn sample_std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_shape() {
        let c = QuestConfig::default();
        assert_eq!(c.num_transactions, 320_000);
        assert_eq!(c.num_items, 994);
        assert!((c.avg_transaction_len - 25.0).abs() < f64::EPSILON);
        assert!((c.avg_pattern_len - 15.0).abs() < f64::EPSILON);
    }

    #[test]
    fn scaled_config() {
        let c = QuestConfig::t25_i15_d320k(0.25);
        assert_eq!(c.num_transactions, 80_000);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_bad_scale() {
        QuestConfig::t25_i15_d320k(1.5);
    }

    #[test]
    fn generated_shape_is_plausible() {
        let db = QuestConfig {
            num_transactions: 2_000,
            ..Default::default()
        }
        .generate(11);
        assert_eq!(db.num_transactions(), 2_000);
        assert_eq!(db.num_items(), 994);
        let len = db.avg_transaction_len();
        // Corruption and packing shift the mean; the paper dataset reports
        // 25. Accept a generous band — what matters is the order of
        // magnitude and density class.
        assert!((15.0..=35.0).contains(&len), "avg len {len}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = QuestConfig {
            num_transactions: 200,
            ..Default::default()
        };
        assert_eq!(c.generate(3), c.generate(3));
        assert_ne!(c.generate(3), c.generate(4));
    }

    #[test]
    fn poisson_mean_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let total: usize = (0..20_000).map(|_| sample_poisson(&mut rng, 15.0)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 15.0).abs() < 0.3, "poisson mean {mean}");
    }

    #[test]
    fn transactions_sorted_unique() {
        let db = QuestConfig {
            num_transactions: 100,
            ..Default::default()
        }
        .generate(8);
        for t in db.transactions() {
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
