//! Dataset shape diagnostics beyond Table 6's four columns.
//!
//! The relative performance of the miners hinges on *popularity skew* (how
//! concentrated item occurrences are) as much as on density; these
//! statistics quantify it for generated analogs so EXPERIMENTS.md can show
//! that each analog lands in the right regime, and tests can pin the
//! generators' profiles.

use crate::deterministic::DeterministicDatabase;

/// Distributional statistics of item popularity in a deterministic
/// database.
#[derive(Clone, Debug, PartialEq)]
pub struct PopularityProfile {
    /// Number of items that occur at least once.
    pub active_items: usize,
    /// Occurrence share of the single most frequent item (`0..=1`, of all
    /// unit occurrences).
    pub top1_share: f64,
    /// Occurrence share of the ten most frequent items.
    pub top10_share: f64,
    /// Gini coefficient of the item-occurrence distribution over *active*
    /// items: 0 = perfectly even, → 1 = all mass on one item.
    pub gini: f64,
    /// Transaction-length distribution quartiles `(p25, p50, p75)`.
    pub len_quartiles: (usize, usize, usize),
}

/// Computes the profile in one pass over the database plus two sorts.
pub fn popularity_profile(db: &DeterministicDatabase) -> PopularityProfile {
    let counts = db.item_counts();
    let mut active: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    active.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let total: u64 = active.iter().sum();
    let total_f = (total as f64).max(1.0);

    let top1_share = active.first().map_or(0.0, |&c| c as f64 / total_f);
    let top10_share = active.iter().take(10).sum::<u64>() as f64 / total_f;

    // Gini over the ascending distribution: G = (2 Σ i·x_i)/(n Σ x) − (n+1)/n.
    let gini = if active.len() <= 1 || total == 0 {
        0.0
    } else {
        let n = active.len() as f64;
        let mut asc = active.clone();
        asc.sort_unstable();
        let weighted: f64 = asc
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        (2.0 * weighted / (n * total as f64) - (n + 1.0) / n).clamp(0.0, 1.0)
    };

    let mut lens: Vec<usize> = db.transactions().iter().map(Vec::len).collect();
    lens.sort_unstable();
    let q = |f: f64| -> usize {
        if lens.is_empty() {
            0
        } else {
            lens[((lens.len() - 1) as f64 * f).round() as usize]
        }
    };
    PopularityProfile {
        active_items: active.len(),
        top1_share,
        top10_share,
        gini,
        len_quartiles: (q(0.25), q(0.5), q(0.75)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{connect_like, kosarak_like};

    #[test]
    fn uniform_data_has_low_gini() {
        // Every item once per transaction: perfectly even.
        let db = DeterministicDatabase::new(vec![vec![0, 1, 2, 3]; 50]);
        let p = popularity_profile(&db);
        assert_eq!(p.active_items, 4);
        assert!(p.gini < 1e-9, "gini {}", p.gini);
        assert!((p.top1_share - 0.25).abs() < 1e-12);
        assert_eq!(p.len_quartiles, (4, 4, 4));
    }

    #[test]
    fn concentrated_data_has_high_gini() {
        let mut rows = vec![vec![0u32]; 95];
        rows.extend(vec![vec![1u32]; 5]);
        let db = DeterministicDatabase::new(rows);
        let p = popularity_profile(&db);
        assert!(p.gini > 0.4, "gini {}", p.gini);
        assert!((p.top1_share - 0.95).abs() < 1e-12);
    }

    #[test]
    fn empty_database() {
        let db = DeterministicDatabase::new(vec![]);
        let p = popularity_profile(&db);
        assert_eq!(p.active_items, 0);
        assert_eq!(p.gini, 0.0);
        assert_eq!(p.len_quartiles, (0, 0, 0));
    }

    #[test]
    fn kosarak_analog_is_much_more_skewed_than_connect() {
        // The regimes that drive the paper's conclusions: clickstream
        // popularity is power-law, game-state popularity near-uniform
        // within dominant variants.
        let connect = popularity_profile(&connect_like(0.002, 4));
        let kosarak = popularity_profile(&kosarak_like(0.002, 4));
        assert!(
            kosarak.gini > connect.gini + 0.2,
            "kosarak gini {} vs connect {}",
            kosarak.gini,
            connect.gini
        );
        assert!(kosarak.top10_share > 0.25);
        // Connect rows are constant length 43.
        assert_eq!(connect.len_quartiles, (43, 43, 43));
    }
}
