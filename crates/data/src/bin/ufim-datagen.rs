//! `ufim-datagen` — generate benchmark-analog datasets to files.
//!
//! Downstream users (and other mining implementations being compared
//! against this one) need the exact same inputs; this tool materializes any
//! benchmark analog deterministically:
//!
//! ```text
//! ufim-datagen <benchmark> [--scale X] [--seed N]
//!              [--model gaussian|zipf|uniform|constant] [--param A] [--param2 B]
//!              [--out FILE] [--deterministic]
//! ```
//!
//! With `--deterministic` the probability-free FIMI file is written;
//! otherwise the uncertain `item:prob` format. `--model` defaults to the
//! benchmark's Table 7 Gaussian; `--param/--param2` are (mean, variance)
//! for `gaussian`, (skew, levels) for `zipf`, (lo, hi) for `uniform`, and
//! (p, –) for `constant`.

use std::io::BufWriter;
use ufim_data::prob::ProbabilityModel;
use ufim_data::registry::Benchmark;
use ufim_data::{assign_probabilities, fimi};

const HELP: &str = "\
ufim-datagen — materialize benchmark-analog datasets

USAGE:
    ufim-datagen <connect|accident|kosarak|gazelle|t25> [OPTIONS]

OPTIONS:
    --scale X        fraction of paper-size transaction count (default 0.01)
    --seed N         RNG seed (default 42)
    --model M        gaussian|zipf|uniform|constant (default: Table 7 gaussian)
    --param A        first model parameter  (mean | skew | lo | p)
    --param2 B       second model parameter (variance | levels | hi)
    --out FILE       output path (default: stdout)
    --deterministic  write the probability-free FIMI file instead
    --stats          print shape statistics to stderr
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{HELP}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        print!("{HELP}");
        return;
    }
    let bench = match args[0].as_str() {
        "connect" => Benchmark::Connect,
        "accident" => Benchmark::Accident,
        "kosarak" => Benchmark::Kosarak,
        "gazelle" => Benchmark::Gazelle,
        "t25" | "t25i15d320k" => Benchmark::T25I15D320k,
        other => fail(&format!("unknown benchmark {other:?}")),
    };

    let mut scale = 0.01f64;
    let mut seed = 42u64;
    let mut model_name: Option<String> = None;
    let mut param: Option<f64> = None;
    let mut param2: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut deterministic = false;
    let mut stats = false;

    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut next_f64 = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail(&format!("{name} needs a numeric value")))
        };
        match a.as_str() {
            "--scale" => scale = next_f64("--scale"),
            "--seed" => seed = next_f64("--seed") as u64,
            "--param" => param = Some(next_f64("--param")),
            "--param2" => param2 = Some(next_f64("--param2")),
            "--model" => {
                model_name = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--model needs a value"))
                        .clone(),
                )
            }
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--out needs a path"))
                        .clone(),
                )
            }
            "--deterministic" => deterministic = true,
            "--stats" => stats = true,
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if !(scale > 0.0 && scale <= 1.0) {
        fail("--scale must be in (0,1]");
    }

    let model = match model_name.as_deref() {
        None => bench.default_model(),
        Some("gaussian") => ProbabilityModel::Gaussian {
            mean: param.unwrap_or(bench.defaults().mean),
            variance: param2.unwrap_or(bench.defaults().variance),
        },
        Some("zipf") => ProbabilityModel::Zipf {
            skew: param.unwrap_or(1.2),
            levels: param2.unwrap_or(10.0) as usize,
        },
        Some("uniform") => ProbabilityModel::Uniform {
            lo: param.unwrap_or(0.1),
            hi: param2.unwrap_or(1.0),
        },
        Some("constant") => ProbabilityModel::Constant(param.unwrap_or(1.0)),
        Some(other) => fail(&format!("unknown model {other:?}")),
    };

    let det = bench.generate_deterministic(scale, seed);
    if stats {
        let p = ufim_data::stats::popularity_profile(&det);
        eprintln!(
            "{}: N={} items={} avg_len={:.2} density={:.5} gini={:.3} top1={:.3} top10={:.3} len_q={:?}",
            bench.name(),
            det.num_transactions(),
            det.num_items(),
            det.avg_transaction_len(),
            det.density(),
            p.gini,
            p.top1_share,
            p.top10_share,
            p.len_quartiles,
        );
    }

    let write = |w: &mut dyn std::io::Write| -> std::io::Result<()> {
        if deterministic {
            fimi::write_fimi(&det, w)
        } else {
            let udb = assign_probabilities(&det, &model, seed ^ 0x9E37_79B9_7F4A_7C15);
            fimi::write_uncertain(&udb, w)
        }
    };
    let result = match &out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            write(&mut BufWriter::new(file))
        }
        None => write(&mut BufWriter::new(std::io::stdout().lock())),
    };
    if let Err(e) = result {
        fail(&format!("write failed: {e}"));
    }
}
