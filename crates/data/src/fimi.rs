//! Readers and writers for the FIMI transaction format and its uncertain
//! extension.
//!
//! * **FIMI** (deterministic): one transaction per line, space-separated
//!   item ids — the format of the repository the paper draws its benchmarks
//!   from (`http://fimi.us.ac.be`).
//! * **Uncertain FIMI** (this workspace's extension): one transaction per
//!   line, space-separated `item:prob` units, e.g. `0:0.8 2:0.9 5:0.7`.
//!   Lines may be empty (an empty transaction keeps `N` stable).
//!
//! Both parsers are streaming (`BufRead`), tolerate `\r\n`, skip `#`
//! comments, and report 1-based line numbers on error.

use crate::deterministic::DeterministicDatabase;
use std::io::{self, BufRead, Write};
use ufim_core::{CoreError, ItemId, Transaction, UncertainDatabase};

/// Errors from reading external dataset files.
#[derive(Debug)]
pub enum FimiError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content.
    Parse(CoreError),
}

impl std::fmt::Display for FimiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FimiError::Io(e) => write!(f, "I/O error: {e}"),
            FimiError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FimiError {}

impl From<io::Error> for FimiError {
    fn from(e: io::Error) -> Self {
        FimiError::Io(e)
    }
}

impl From<CoreError> for FimiError {
    fn from(e: CoreError) -> Self {
        FimiError::Parse(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> FimiError {
    FimiError::Parse(CoreError::Parse {
        line,
        message: message.into(),
    })
}

/// Reads a deterministic FIMI file.
pub fn read_fimi<R: BufRead>(reader: R) -> Result<DeterministicDatabase, FimiError> {
    let mut transactions = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        let mut t: Vec<ItemId> = Vec::new();
        for tok in line.split_ascii_whitespace() {
            let item: ItemId = tok
                .parse()
                .map_err(|_| parse_err(idx + 1, format!("invalid item id {tok:?}")))?;
            t.push(item);
        }
        transactions.push(t);
    }
    Ok(DeterministicDatabase::new(transactions))
}

/// Writes a deterministic database in FIMI format.
pub fn write_fimi<W: Write>(db: &DeterministicDatabase, mut writer: W) -> io::Result<()> {
    for t in db.transactions() {
        let mut first = true;
        for &item in t {
            if first {
                first = false;
            } else {
                writer.write_all(b" ")?;
            }
            write!(writer, "{item}")?;
        }
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

/// Reads an uncertain FIMI file (`item:prob` units).
pub fn read_uncertain<R: BufRead>(reader: R) -> Result<UncertainDatabase, FimiError> {
    let mut transactions = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        let mut units: Vec<(ItemId, f64)> = Vec::new();
        for tok in line.split_ascii_whitespace() {
            let (item_s, prob_s) = tok
                .split_once(':')
                .ok_or_else(|| parse_err(idx + 1, format!("unit {tok:?} lacks ':'")))?;
            let item: ItemId = item_s
                .parse()
                .map_err(|_| parse_err(idx + 1, format!("invalid item id {item_s:?}")))?;
            let prob: f64 = prob_s
                .parse()
                .map_err(|_| parse_err(idx + 1, format!("invalid probability {prob_s:?}")))?;
            units.push((item, prob));
        }
        // Transaction::new re-validates probabilities and duplicates; remap
        // its error to carry the line number.
        let t = Transaction::new(units).map_err(|e| parse_err(idx + 1, e.to_string()))?;
        transactions.push(t);
    }
    Ok(UncertainDatabase::from_transactions(transactions))
}

/// Writes an uncertain database in `item:prob` format. Probabilities are
/// written with enough digits (`{:.17e}`-free shortest form via `{}`) to
/// round-trip exactly.
pub fn write_uncertain<W: Write>(db: &UncertainDatabase, mut writer: W) -> io::Result<()> {
    for t in db.transactions() {
        let mut first = true;
        for (item, prob) in t.units() {
            if first {
                first = false;
            } else {
                writer.write_all(b" ")?;
            }
            write!(writer, "{item}:{prob}")?;
        }
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fimi_roundtrip() {
        let db = DeterministicDatabase::new(vec![vec![3, 1, 2], vec![], vec![10]]);
        let mut buf = Vec::new();
        write_fimi(&db, &mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "1 2 3\n\n10\n");
        let back = read_fimi(Cursor::new(buf)).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn fimi_skips_comments_and_crlf() {
        let input = "# header\r\n1 2\r\n\r\n3\n";
        let db = read_fimi(Cursor::new(input)).unwrap();
        assert_eq!(db.num_transactions(), 3);
        assert_eq!(db.transactions()[0], vec![1, 2]);
        assert!(db.transactions()[1].is_empty());
    }

    #[test]
    fn fimi_reports_line_numbers() {
        let err = read_fimi(Cursor::new("1 2\nx y\n")).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn uncertain_roundtrip_exact() {
        let db = ufim_core::examples::paper_table1();
        let mut buf = Vec::new();
        write_uncertain(&db, &mut buf).unwrap();
        let back = read_uncertain(Cursor::new(buf)).unwrap();
        assert_eq!(back.num_transactions(), db.num_transactions());
        for (a, b) in back.transactions().iter().zip(db.transactions()) {
            assert_eq!(a.items(), b.items());
            assert_eq!(a.probs(), b.probs()); // bitwise round-trip
        }
    }

    #[test]
    fn uncertain_rejects_malformed_units() {
        assert!(read_uncertain(Cursor::new("1-0.5\n")).is_err());
        assert!(read_uncertain(Cursor::new("a:0.5\n")).is_err());
        assert!(read_uncertain(Cursor::new("1:zz\n")).is_err());
        let err = read_uncertain(Cursor::new("1:0.5\n2:1.5\n")).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn uncertain_empty_lines_keep_n() {
        let db = read_uncertain(Cursor::new("0:0.5\n\n1:0.25\n")).unwrap();
        assert_eq!(db.num_transactions(), 3);
        assert!(db.transactions()[1].is_empty());
    }
}
