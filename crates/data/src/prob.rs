//! Probability-assignment models: deterministic → uncertain databases.
//!
//! "Assigning probability to deterministic database to generate meaningful
//! uncertain test data is widely accepted by the current community"
//! (paper §4.1). Each unit of each transaction independently draws an
//! existence probability from one of the models below; a drawn probability
//! of zero removes the unit (absence and zero probability are equivalent).

use crate::deterministic::DeterministicDatabase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ufim_core::{Transaction, UncertainDatabase};

/// Smallest probability the Gaussian model will assign. Draws below this are
/// clamped rather than dropped so the uncertain database keeps exactly the
/// unit count of its deterministic source (the paper's setup).
pub const GAUSSIAN_P_MIN: f64 = 0.01;

/// A distribution over existence probabilities.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbabilityModel {
    /// Normal(`mean`, `variance`) clamped into `[GAUSSIAN_P_MIN, 1]` — the
    /// paper's primary model. Table 7 uses (0.95, 0.05) for the
    /// high-mean/low-variance scenarios and (0.5, 0.5) for
    /// low-mean/high-variance.
    Gaussian {
        /// Mean of the underlying normal.
        mean: f64,
        /// Variance (σ²) of the underlying normal, as reported in Table 7.
        variance: f64,
    },
    /// The paper's Zipf scenario (§4.1, Figures 4(k)–(l) etc.): draw a
    /// discrete *probability level* `j ∈ {0, …, levels}` with
    /// `P(j) ∝ (j+1)^{-skew}` and assign `p = j/levels`. Level 0 maps to
    /// probability zero — the unit disappears — so a larger skew
    /// concentrates mass at level 0 and, exactly as the paper observes,
    /// "more items are assigned the zero probability with the increase of
    /// the skew parameter, which results in fewer frequent itemsets".
    Zipf {
        /// Skew `s` (the paper sweeps 0.8 → 2.0).
        skew: f64,
        /// Number of nonzero levels (defaults to 10 via [`ProbabilityModel::zipf`]).
        levels: usize,
    },
    /// Uniform over `[lo, hi] ⊆ (0, 1]`.
    Uniform {
        /// Lower bound (exclusive of zero).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every unit gets the same probability (1.0 degrades uncertain mining
    /// to classical mining — used by equivalence tests).
    Constant(f64),
}

impl ProbabilityModel {
    /// The paper's default Zipf configuration with 10 probability levels.
    pub fn zipf(skew: f64) -> Self {
        ProbabilityModel::Zipf { skew, levels: 10 }
    }

    /// Draws one probability; `0.0` means "drop the unit".
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ProbabilityModel::Gaussian { mean, variance } => {
                let std = variance.sqrt();
                let draw = mean + std * sample_std_normal(rng);
                draw.clamp(GAUSSIAN_P_MIN, 1.0)
            }
            ProbabilityModel::Zipf { skew, levels } => {
                assert!(levels >= 1, "need at least one nonzero level");
                // Cumulative inversion over the (levels+1)-point law.
                let mut total = 0.0;
                for j in 0..=levels {
                    total += ((j + 1) as f64).powf(-skew);
                }
                let mut u: f64 = rng.gen_range(0.0..total);
                for j in 0..=levels {
                    let w = ((j + 1) as f64).powf(-skew);
                    if u < w {
                        return j as f64 / levels as f64;
                    }
                    u -= w;
                }
                1.0
            }
            ProbabilityModel::Uniform { lo, hi } => {
                assert!(lo > 0.0 && hi <= 1.0 && lo <= hi, "bad uniform range");
                rng.gen_range(lo..=hi)
            }
            ProbabilityModel::Constant(p) => {
                assert!(p > 0.0 && p <= 1.0, "bad constant probability");
                p
            }
        }
    }
}

/// Standard normal via Box–Muller (kept private; `rand` is the only
/// sanctioned randomness dependency and ships no Gaussian sampler in the
/// base crate).
fn sample_std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Assigns a probability from `model` to every unit of `det`, producing an
/// uncertain database. Units drawing probability zero are dropped;
/// transactions that lose all units remain as empty transactions so the
/// transaction count `N` (and with it every `N·ratio` threshold) matches the
/// deterministic source.
pub fn assign_probabilities(
    det: &DeterministicDatabase,
    model: &ProbabilityModel,
    seed: u64,
) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transactions = Vec::with_capacity(det.num_transactions());
    for t in det.transactions() {
        let mut items = Vec::with_capacity(t.len());
        let mut probs = Vec::with_capacity(t.len());
        for &item in t {
            let p = model.sample(&mut rng);
            if p > 0.0 {
                items.push(item);
                probs.push(p);
            }
        }
        transactions.push(Transaction::from_sorted_unchecked(items, probs));
    }
    UncertainDatabase::with_num_items(transactions, det.num_items())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn gaussian_stays_in_bounds_and_near_mean() {
        let m = ProbabilityModel::Gaussian {
            mean: 0.95,
            variance: 0.05,
        };
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        assert!(samples.iter().all(|&p| (GAUSSIAN_P_MIN..=1.0).contains(&p)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Clamping pulls the mean below 0.95 (mass above 1 folds down);
        // it must stay in a plausible high band.
        assert!((0.80..=0.95).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gaussian_high_variance_spreads() {
        let m = ProbabilityModel::Gaussian {
            mean: 0.5,
            variance: 0.5,
        };
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        let at_min = samples.iter().filter(|&&p| p == GAUSSIAN_P_MIN).count();
        let at_max = samples.iter().filter(|&&p| p == 1.0).count();
        // σ ≈ 0.707: roughly a quarter of the mass clamps at each end.
        assert!(
            at_min > 2_000 && at_max > 2_000,
            "min {at_min} max {at_max}"
        );
    }

    #[test]
    fn zipf_zero_fraction_grows_with_skew() {
        let mut r = rng();
        let frac_zero = |skew: f64, r: &mut StdRng| {
            let m = ProbabilityModel::zipf(skew);
            let zeros = (0..20_000).filter(|_| m.sample(r) == 0.0).count();
            zeros as f64 / 20_000.0
        };
        let low = frac_zero(0.8, &mut r);
        let high = frac_zero(2.0, &mut r);
        assert!(
            high > low + 0.1,
            "zero fraction should grow with skew: {low} vs {high}"
        );
    }

    #[test]
    fn zipf_levels_are_gridded() {
        let m = ProbabilityModel::Zipf {
            skew: 1.0,
            levels: 4,
        };
        let mut r = rng();
        for _ in 0..1_000 {
            let p = m.sample(&mut r);
            let scaled = p * 4.0;
            assert!((scaled - scaled.round()).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn uniform_and_constant() {
        let mut r = rng();
        let u = ProbabilityModel::Uniform { lo: 0.2, hi: 0.4 };
        for _ in 0..1_000 {
            let p = u.sample(&mut r);
            assert!((0.2..=0.4).contains(&p));
        }
        assert_eq!(ProbabilityModel::Constant(0.7).sample(&mut r), 0.7);
    }

    #[test]
    fn assignment_preserves_structure() {
        let det = DeterministicDatabase::new(vec![vec![0, 1, 2], vec![1, 3]]);
        let udb = assign_probabilities(&det, &ProbabilityModel::Constant(0.5), 1);
        assert_eq!(udb.num_transactions(), 2);
        assert_eq!(udb.num_items(), 4);
        assert_eq!(udb.transactions()[0].items(), &[0, 1, 2]);
        assert!(udb.transactions()[0].probs().iter().all(|&p| p == 0.5));
    }

    #[test]
    fn assignment_drops_zero_probability_units() {
        let det = DeterministicDatabase::new(vec![vec![0, 1, 2, 3]; 200]);
        let udb = assign_probabilities(&det, &ProbabilityModel::zipf(2.0), 5);
        // Transaction count is preserved even when units vanish…
        assert_eq!(udb.num_transactions(), 200);
        // …but a substantial share of units is gone at skew 2.
        let total_units: usize = udb.transactions().iter().map(|t| t.len()).sum();
        assert!(total_units < 700, "only {total_units} of 800 should remain");
        // Every surviving probability is on the 10-level grid and positive.
        for t in udb.transactions() {
            for &p in t.probs() {
                assert!(p > 0.0 && p <= 1.0);
            }
        }
    }

    #[test]
    fn assignment_is_seeded() {
        let det = DeterministicDatabase::new(vec![vec![0, 1], vec![2]]);
        let m = ProbabilityModel::Gaussian {
            mean: 0.5,
            variance: 0.5,
        };
        assert_eq!(
            assign_probabilities(&det, &m, 7),
            assign_probabilities(&det, &m, 7)
        );
        assert_ne!(
            assign_probabilities(&det, &m, 7),
            assign_probabilities(&det, &m, 8)
        );
    }
}
