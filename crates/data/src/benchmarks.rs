//! Structure-matched synthetic analogs of the paper's four FIMI benchmarks.
//!
//! Each generator reproduces its namesake's Table 6 shape — transaction
//! count, vocabulary size, average length, density — and the qualitative
//! item-popularity profile that drives the relative behaviour of the mining
//! algorithms (long shared prefixes for dense data, power-law tails for
//! sparse data). See DESIGN.md §4 for the substitution rationale.
//!
//! All generators take a `scale ∈ (0, 1]` factor applied to the transaction
//! count (vocabulary stays fixed so density is preserved) and an explicit
//! RNG seed.

use crate::deterministic::DeterministicDatabase;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ufim_core::{ItemId, Transaction, UncertainDatabase};

/// Scales a paper-size transaction count, keeping at least one transaction.
fn scaled(n: usize, scale: f64) -> usize {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    ((n as f64 * scale).round() as usize).max(1)
}

/// Samples a transaction length from a geometric-like distribution with the
/// given mean (min 1), truncated at `max`.
fn sample_len(rng: &mut StdRng, mean: f64, max: usize) -> usize {
    debug_assert!(mean >= 1.0);
    // Shifted geometric: 1 + Geom(p) has mean 1 + (1-p)/p = mean ⇒
    // p = 1/mean. Sample by inversion.
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(0.0..1.0);
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor() as usize;
    (1 + g).min(max)
}

/// A Zipf-popularity item sampler over `0..n` with exponent `s`:
/// `P(rank r) ∝ (r+1)^{-s}`. Uses an alias-free cumulative table + binary
/// search (build `O(n)`, sample `O(log n)`).
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with skew `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "skew must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Samples a rank in `0..n` (rank 0 most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Connect analog — **dense** (Table 6: 67 557 × 129 items, avg len 43,
/// density 0.33).
///
/// Connect-4 records are 42 board cells plus a class label, each cell in one
/// of three states; every transaction therefore has exactly 43 items drawn
/// one-per-slot from 43 disjoint 3-item groups. The analog reproduces that
/// grid: slot `k` contributes one of items `{3k, 3k+1, 3k+2}` with a skewed,
/// slot-dependent preference, giving the long shared prefixes that make
/// dense data friendly to breadth-first miners.
pub fn connect_like(scale: f64, seed: u64) -> DeterministicDatabase {
    const SLOTS: usize = 43;
    const VARIANTS: usize = 3;
    let n = scaled(67_557, scale);
    let mut rng = StdRng::seed_from_u64(seed);

    // Slot-specific state preferences: most cells in a Connect-4 trace are
    // empty, so one variant dominates. Rotate which one to decorrelate slots.
    let weights: Vec<WeightedIndex<f64>> = (0..SLOTS)
        .map(|k| {
            let dominant = k % VARIANTS;
            let mut w = [0.12, 0.12, 0.12];
            w[dominant] = 0.76;
            WeightedIndex::new(w).expect("valid weights")
        })
        .collect();

    let mut transactions = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = Vec::with_capacity(SLOTS);
        for (k, w) in weights.iter().enumerate() {
            let variant = w.sample(&mut rng);
            t.push((k * VARIANTS + variant) as ItemId);
        }
        transactions.push(t);
    }
    DeterministicDatabase::with_num_items(transactions, (SLOTS * VARIANTS) as u32)
}

/// Accident analog — **dense-ish** (Table 6: 340 183 × 468 items, avg len
/// 33.8, density 0.072).
///
/// The real Accident data mixes a handful of near-universal attributes with
/// a long popularity tail. The analog gives item `i` an independent
/// inclusion probability `pop_i = min(1.0, c/(i+1)^0.75)` (the real data has near-universal attribute items) with `c`
/// calibrated so `Σ pop_i = 33.8`.
pub fn accident_like(scale: f64, seed: u64) -> DeterministicDatabase {
    const ITEMS: usize = 468;
    const TARGET_LEN: f64 = 33.8;
    const CAP: f64 = 1.0;
    const EXP: f64 = 0.75;
    let n = scaled(340_183, scale);
    let mut rng = StdRng::seed_from_u64(seed);

    // Calibrate c by bisection: Σ min(CAP, c/(i+1)^EXP) is monotone in c.
    let sum_for = |c: f64| -> f64 {
        (0..ITEMS)
            .map(|i| (c / ((i + 1) as f64).powf(EXP)).min(CAP))
            .sum()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while sum_for(hi) < TARGET_LEN {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if sum_for(mid) < TARGET_LEN {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let popularity: Vec<f64> = (0..ITEMS)
        .map(|i| (hi / ((i + 1) as f64).powf(EXP)).min(CAP))
        .collect();

    let mut transactions = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = Vec::new();
        for (i, &p) in popularity.iter().enumerate() {
            if rng.gen_bool(p) {
                t.push(i as ItemId);
            }
        }
        transactions.push(t);
    }
    DeterministicDatabase::with_num_items(transactions, ITEMS as u32)
}

/// Kosarak analog — **sparse** (Table 6: 990 002 × 41 270 items, avg len
/// 8.1, density 0.00019).
///
/// Kosarak is click-stream data: short sessions over a huge, heavily
/// Zipf-distributed page vocabulary. Transaction lengths follow a shifted
/// geometric with mean 8.1; items are drawn without replacement from a
/// Zipf(1.15) popularity law.
pub fn kosarak_like(scale: f64, seed: u64) -> DeterministicDatabase {
    const ITEMS: usize = 41_270;
    const MEAN_LEN: f64 = 8.1;
    let n = scaled(990_002, scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(ITEMS, 1.15);

    let mut transactions = Vec::with_capacity(n);
    let mut t: Vec<ItemId> = Vec::new();
    for _ in 0..n {
        let len = sample_len(&mut rng, MEAN_LEN, 64);
        t.clear();
        // Rejection keeps the draw without-replacement; session lengths are
        // tiny next to the vocabulary so collisions are rare.
        let mut attempts = 0;
        while t.len() < len && attempts < len * 20 {
            let item = zipf.sample(&mut rng) as ItemId;
            if !t.contains(&item) {
                t.push(item);
            }
            attempts += 1;
        }
        transactions.push(t.clone());
    }
    DeterministicDatabase::with_num_items(transactions, ITEMS as u32)
}

/// Gazelle analog — **very sparse** (Table 6: 59 601 × 498 items, avg len
/// 2.5, density 0.005).
///
/// Gazelle (BMS-WebView) holds short e-commerce click sequences. Lengths
/// follow a shifted geometric with mean 2.5; items a Zipf(1.0) law.
pub fn gazelle_like(scale: f64, seed: u64) -> DeterministicDatabase {
    const ITEMS: usize = 498;
    const MEAN_LEN: f64 = 2.5;
    let n = scaled(59_601, scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(ITEMS, 1.0);

    let mut transactions = Vec::with_capacity(n);
    for _ in 0..n {
        let len = sample_len(&mut rng, MEAN_LEN, 32);
        let mut t: Vec<ItemId> = Vec::with_capacity(len);
        let mut attempts = 0;
        while t.len() < len && attempts < len * 40 {
            let item = zipf.sample(&mut rng) as ItemId;
            if !t.contains(&item) {
                t.push(item);
            }
            attempts += 1;
        }
        transactions.push(t);
    }
    DeterministicDatabase::with_num_items(transactions, ITEMS as u32)
}

/// A deeply skewed **uncertain** database for the parallel suites: item
/// `i` appears in a transaction with probability `0.9 / 1.3^i` (existence
/// probabilities uniform in `[0.3, 1.0]`), so item 0 is near-ubiquitous
/// and one first-level subtree dominates every depth-first decomposition
/// several levels deep — the shape that serializes a one-level fan-out
/// and exists to exercise the miners' *nested* task spawning.
///
/// The single definition is shared by `tests/thread_determinism.rs` and
/// `bench_parallel` so the CI identity guard and the benchmark can never
/// drift onto different fixtures.
pub fn deep_skew(transactions: usize, items: u32, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let t: Vec<Transaction> = (0..transactions)
        .map(|_| {
            let units: Vec<(ItemId, f64)> = (0..items)
                .filter_map(|i| {
                    let p_incl = 0.9 / 1.3f64.powi(i as i32);
                    if rng.gen_bool(p_incl) {
                        Some((i, rng.gen_range(0.3..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).expect("probabilities are in (0, 1]")
        })
        .collect();
    UncertainDatabase::with_num_items(t, items)
}

/// **Regional** synthetic fixture for the sharded support engines: huge-N,
/// small-I, with hard spatial locality in the tid dimension.
///
/// Item `0` is global (present in ~90% of transactions); each *regional*
/// item `r ∈ 1..=regions` appears only inside its contiguous tid band
/// (band `r-1` of `regions` equal slices), in ~80% of that band's
/// transactions. Every posting list therefore has long all-zero tid
/// ranges, which is exactly what per-shard zone maps exist to exploit:
/// any candidate touching a regional item is evaluable in at most the
/// shards its band overlaps, and the zone maps prune the rest without
/// reading a single probability.
///
/// Shared by `bench_shards` and its baseline so the pruning-rate gate and
/// the benchmark can never drift onto different data.
pub fn regional(transactions: usize, regions: u32, seed: u64) -> UncertainDatabase {
    assert!(regions >= 1, "need at least one region");
    let mut rng = StdRng::seed_from_u64(seed);
    let band = transactions.div_ceil(regions as usize).max(1);
    let t: Vec<Transaction> = (0..transactions)
        .map(|tid| {
            let region = (tid / band) as u32;
            let mut units: Vec<(ItemId, f64)> = Vec::with_capacity(2);
            if rng.gen_bool(0.9) {
                units.push((0, rng.gen_range(0.5..=1.0)));
            }
            if rng.gen_bool(0.8) {
                units.push((1 + region, rng.gen_range(0.3..=1.0)));
            }
            Transaction::new(units).expect("probabilities are in (0, 1]")
        })
        .collect();
    UncertainDatabase::with_num_items(t, regions + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should dominate rank 10");
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn zipf_skew_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn sample_len_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let total: usize = (0..50_000).map(|_| sample_len(&mut rng, 8.1, 64)).sum();
        let mean = total as f64 / 50_000.0;
        assert!((mean - 8.1).abs() < 0.3, "mean length {mean}");
    }

    #[test]
    fn connect_shape_matches_table6() {
        let db = connect_like(0.01, 42);
        assert_eq!(db.num_items(), 129);
        assert!((db.avg_transaction_len() - 43.0).abs() < 1e-9);
        assert!((db.density() - 0.333).abs() < 0.01);
        assert_eq!(db.num_transactions(), 676);
    }

    #[test]
    fn connect_is_deterministic_per_seed() {
        let a = connect_like(0.001, 7);
        let b = connect_like(0.001, 7);
        let c = connect_like(0.001, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn accident_shape_matches_table6() {
        let db = accident_like(0.002, 42);
        assert_eq!(db.num_items(), 468);
        let len = db.avg_transaction_len();
        assert!((len - 33.8).abs() < 1.5, "avg len {len}");
        assert!((db.density() - 0.072).abs() < 0.01);
    }

    #[test]
    fn kosarak_shape_matches_table6() {
        let db = kosarak_like(0.002, 42);
        assert_eq!(db.num_items(), 41_270);
        let len = db.avg_transaction_len();
        assert!((len - 8.1).abs() < 0.6, "avg len {len}");
        assert!(db.density() < 0.001);
    }

    #[test]
    fn gazelle_shape_matches_table6() {
        let db = gazelle_like(0.02, 42);
        assert_eq!(db.num_items(), 498);
        let len = db.avg_transaction_len();
        assert!((len - 2.5).abs() < 0.25, "avg len {len}");
        assert!((db.density() - 0.005).abs() < 0.002);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_bad_scale() {
        connect_like(0.0, 1);
    }

    #[test]
    fn deep_skew_is_dominated_by_item_zero() {
        let db = deep_skew(2_000, 16, 7);
        assert_eq!(db.num_items(), 16);
        let with = |i: u32| {
            db.transactions()
                .iter()
                .filter(|t| t.items().contains(&i))
                .count()
        };
        // Geometric decay: item 0 in ~90% of transactions, the chain
        // {0,1,2} still dominant, the tail rare — the skew the parallel
        // suites rely on.
        assert!(with(0) > 1_700, "item 0 in {} of 2000", with(0));
        assert!(with(0) > 2 * with(4));
        assert!(with(15) < with(0) / 10);
    }

    #[test]
    fn regional_items_stay_inside_their_bands() {
        let db = regional(4_000, 4, 7);
        assert_eq!(db.num_items(), 5);
        for (tid, t) in db.transactions().iter().enumerate() {
            let region = (tid / 1_000) as u32;
            for &i in t.items() {
                assert!(
                    i == 0 || i == 1 + region,
                    "item {i} outside band at tid {tid}"
                );
            }
        }
        // Dense enough that every band's item actually shows up.
        for r in 1..=4u32 {
            let with = db
                .transactions()
                .iter()
                .filter(|t| t.items().contains(&r))
                .count();
            assert!(with > 700, "regional item {r} in only {with} transactions");
        }
    }

    #[test]
    fn transactions_are_canonical() {
        for db in [kosarak_like(0.0005, 9), gazelle_like(0.005, 9)] {
            for t in db.transactions() {
                assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted: {t:?}");
            }
        }
    }
}
