//! Deterministic (probability-free) transaction databases.
//!
//! The paper's methodology — "assign a probability generated from a
//! distribution to each item of a deterministic benchmark" — makes the
//! deterministic database an explicit intermediate artifact. This module is
//! that artifact; [`crate::prob`] turns it into an
//! [`ufim_core::UncertainDatabase`].

use ufim_core::ItemId;

/// A deterministic transaction database: items only, no probabilities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterministicDatabase {
    transactions: Vec<Vec<ItemId>>,
    num_items: u32,
}

impl DeterministicDatabase {
    /// Builds from raw transactions; each transaction is sorted and
    /// deduplicated, and the vocabulary is inferred from the max item id.
    pub fn new(mut transactions: Vec<Vec<ItemId>>) -> Self {
        let mut num_items = 0;
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&max) = t.last() {
                num_items = num_items.max(max + 1);
            }
        }
        DeterministicDatabase {
            transactions,
            num_items,
        }
    }

    /// Builds with an explicit vocabulary size covering every item.
    pub fn with_num_items(mut transactions: Vec<Vec<ItemId>>, num_items: u32) -> Self {
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            debug_assert!(t.last().is_none_or(|&m| m < num_items));
        }
        DeterministicDatabase {
            transactions,
            num_items,
        }
    }

    /// The transactions (each sorted ascending, duplicate-free).
    pub fn transactions(&self) -> &[Vec<ItemId>] {
        &self.transactions
    }

    /// Number of transactions.
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Vocabulary size.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Average transaction length (`Ave. Len.` of Table 6).
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let total: usize = self.transactions.iter().map(Vec::len).sum();
        total as f64 / self.transactions.len() as f64
    }

    /// `avg_len / num_items` (`Density` of Table 6).
    pub fn density(&self) -> f64 {
        if self.num_items == 0 {
            0.0
        } else {
            self.avg_transaction_len() / self.num_items as f64
        }
    }

    /// Keeps only the first `n` transactions (scalability sweeps).
    pub fn truncated(&self, n: usize) -> DeterministicDatabase {
        DeterministicDatabase {
            transactions: self.transactions[..n.min(self.transactions.len())].to_vec(),
            num_items: self.num_items,
        }
    }

    /// Per-item occurrence counts (classical support of singletons).
    pub fn item_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items as usize];
        for t in &self.transactions {
            for &i in t {
                counts[i as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_dedups_and_infers_vocab() {
        let db = DeterministicDatabase::new(vec![vec![3, 1, 3], vec![0]]);
        assert_eq!(db.transactions()[0], vec![1, 3]);
        assert_eq!(db.num_items(), 4);
        assert_eq!(db.num_transactions(), 2);
    }

    #[test]
    fn stats() {
        let db = DeterministicDatabase::with_num_items(vec![vec![0, 1], vec![2], vec![0, 1, 2]], 4);
        assert!((db.avg_transaction_len() - 2.0).abs() < 1e-12);
        assert!((db.density() - 0.5).abs() < 1e-12);
        assert_eq!(db.item_counts(), vec![2, 2, 2, 0]);
    }

    #[test]
    fn empty_database_stats() {
        let db = DeterministicDatabase::new(vec![]);
        assert_eq!(db.avg_transaction_len(), 0.0);
        assert_eq!(db.density(), 0.0);
        assert_eq!(db.num_items(), 0);
    }

    #[test]
    fn truncate() {
        let db = DeterministicDatabase::new(vec![vec![0], vec![1], vec![2]]);
        let t = db.truncated(2);
        assert_eq!(t.num_transactions(), 2);
        assert_eq!(t.num_items(), 3); // vocabulary preserved
        assert_eq!(db.truncated(10).num_transactions(), 3);
    }
}
