//! Property-based tests for the data substrate: format round-trips,
//! generator invariants, probability-model ranges.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;
use ufim_data::deterministic::DeterministicDatabase;
use ufim_data::fimi;
use ufim_data::prob::{assign_probabilities, ProbabilityModel, GAUSSIAN_P_MIN};

fn raw_db() -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(vec(0u32..50, 0..8), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fimi_roundtrip_any_db(raw in raw_db()) {
        let db = DeterministicDatabase::new(raw);
        let mut buf = Vec::new();
        fimi::write_fimi(&db, &mut buf).unwrap();
        let back = fimi::read_fimi(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.transactions(), db.transactions());
    }

    #[test]
    fn uncertain_fimi_roundtrip_bitwise(raw in raw_db(), seed in 0u64..1000) {
        let det = DeterministicDatabase::new(raw);
        let udb = assign_probabilities(
            &det,
            &ProbabilityModel::Gaussian { mean: 0.6, variance: 0.2 },
            seed,
        );
        let mut buf = Vec::new();
        fimi::write_uncertain(&udb, &mut buf).unwrap();
        let back = fimi::read_uncertain(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_transactions(), udb.num_transactions());
        for (a, b) in back.transactions().iter().zip(udb.transactions()) {
            prop_assert_eq!(a.items(), b.items());
            prop_assert_eq!(a.probs(), b.probs()); // bitwise
        }
    }

    #[test]
    fn gaussian_samples_always_valid(mean in 0u32..=10, variance in 0u32..=10, seed in 0u64..500) {
        let m = ProbabilityModel::Gaussian {
            mean: mean as f64 / 10.0,
            variance: variance as f64 / 10.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let p = m.sample(&mut rng);
            prop_assert!((GAUSSIAN_P_MIN..=1.0).contains(&p));
        }
    }

    #[test]
    fn zipf_samples_on_grid(skew in 1u32..=30, levels in 1usize..=20, seed in 0u64..500) {
        let m = ProbabilityModel::Zipf { skew: skew as f64 / 10.0, levels };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let p = m.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&p));
            let scaled = p * levels as f64;
            prop_assert!((scaled - scaled.round()).abs() < 1e-9, "p={} not on grid", p);
        }
    }

    #[test]
    fn assignment_preserves_transaction_count_and_items(raw in raw_db(), seed in 0u64..500) {
        let det = DeterministicDatabase::new(raw);
        let udb = assign_probabilities(&det, &ProbabilityModel::zipf(1.2), seed);
        prop_assert_eq!(udb.num_transactions(), det.num_transactions());
        prop_assert_eq!(udb.num_items(), det.num_items());
        // Every unit surviving assignment appears in the deterministic row.
        for (u, d) in udb.transactions().iter().zip(det.transactions()) {
            for (item, p) in u.units() {
                prop_assert!(d.contains(&item));
                prop_assert!(p > 0.0 && p <= 1.0);
            }
        }
    }

    #[test]
    fn assignment_is_deterministic_in_seed(raw in raw_db(), seed in 0u64..500) {
        let det = DeterministicDatabase::new(raw);
        let m = ProbabilityModel::Uniform { lo: 0.1, hi: 0.9 };
        let a = assign_probabilities(&det, &m, seed);
        let b = assign_probabilities(&det, &m, seed);
        prop_assert_eq!(a, b);
    }
}

/// Generators are expensive; their shape properties are checked once per
/// generator at fixed seeds rather than per proptest case.
#[test]
fn generator_shapes_are_stable_across_seeds() {
    use ufim_data::registry::Benchmark;
    for seed in [1u64, 99, 12345] {
        for b in [Benchmark::Connect, Benchmark::Gazelle] {
            let det = b.generate_deterministic(0.005, seed);
            let shape = b.paper_shape();
            assert_eq!(det.num_items(), shape.num_items);
            let len = det.avg_transaction_len();
            assert!(
                (len - shape.avg_len).abs() / shape.avg_len < 0.25,
                "{} seed {seed}: {len} vs {}",
                b.name(),
                shape.avg_len
            );
        }
    }
}
