//! Sensor-network monitoring — the paper's opening motivation: "due to the
//! inherent uncertainty of sensors, the collected data are often inaccurate".
//!
//! A field of sensors reports discrete events (high temperature, vibration,
//! voltage sag, …). Each reading carries a confidence derived from the
//! sensor's noise model, so a day of telemetry is an uncertain transaction
//! database: one transaction per time window, one `(event, confidence)`
//! unit per report. Mining probabilistic frequent itemsets answers "which
//! event combinations genuinely co-occur?" — with probabilistic guarantees,
//! not just expectations.
//!
//! Run with: `cargo run --release --example sensor_network`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_fim::metrics::time::measure;
use uncertain_fim::prelude::*;

/// Synthesizes telemetry: `windows` time windows over `sensors` sensors.
/// Three correlated event groups are planted; the mining should recover
/// them despite per-reading noise.
fn synthesize(windows: usize, sensors: u32, seed: u64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    // Planted co-occurrence groups (e.g. overheating: {0: high-temp,
    // 1: fan-stall, 2: voltage-sag}).
    let groups: &[&[u32]] = &[&[0, 1, 2], &[7, 8], &[12, 13, 14]];
    let mut transactions = Vec::with_capacity(windows);
    for _ in 0..windows {
        let mut units: Vec<(u32, f64)> = Vec::new();
        // Each group fires as a unit in 30% of windows; readings carry
        // confidence 0.75–0.99 (sensor SNR).
        for g in groups {
            if rng.gen_bool(0.3) {
                for &event in *g {
                    units.push((event, rng.gen_range(0.75..0.99)));
                }
            }
        }
        // Background noise: spurious low-confidence reports.
        for event in 0..sensors {
            if units.iter().all(|&(e, _)| e != event) && rng.gen_bool(0.05) {
                units.push((event, rng.gen_range(0.1..0.5)));
            }
        }
        transactions.push(Transaction::new(units).expect("valid units"));
    }
    UncertainDatabase::with_num_items(transactions, sensors)
}

fn main() {
    let db = synthesize(20_000, 24, 7);
    println!(
        "telemetry: {} windows, {} event types, {:.1} reports/window",
        db.num_transactions(),
        db.num_items(),
        db.stats().avg_transaction_len
    );

    // Sparse data (density ~0.1) → the paper says UH-Mine-family wins there.
    // 0.15 sits below the planted triple mass (0.3 firing rate × ~0.66
    // three-reading confidence ≈ 0.2) with headroom for sampling noise.
    let (min_sup, pft) = (0.15, 0.95);

    // Exact answer via DCB (divide-and-conquer + Chernoff pruning).
    let (exact, t_exact) = measure(|| {
        DcMiner::with_pruning()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .expect("valid parameters")
    });

    // Approximate answer via the paper's NDUH-Mine at esup cost.
    let (approx, t_approx) = measure(|| {
        NDUHMine::new()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .expect("valid parameters")
    });

    let acc = uncertain_fim::metrics::accuracy::precision_recall(&approx, &exact);
    println!(
        "\nDCB (exact):      {:>6} itemsets in {:>8.2?}",
        exact.len(),
        t_exact
    );
    println!(
        "NDUH-Mine (CLT):  {:>6} itemsets in {:>8.2?}   precision {:.3}, recall {:.3}",
        approx.len(),
        t_approx,
        acc.precision,
        acc.recall
    );

    println!("\nRecovered co-occurring event groups (maximal itemsets, exact Pr):");
    let mut maximal = uncertain_fim::miners::postprocess::maximal(&exact);
    maximal.sort_by_key(|fi| std::cmp::Reverse(fi.itemset.len()));
    for fi in maximal.iter().take(8) {
        println!(
            "  {}  esup/N = {:.3}  Pr{{sup ≥ {}}} = {:.4}",
            fi.itemset,
            fi.expected_support / db.num_transactions() as f64,
            (min_sup * db.num_transactions() as f64).ceil(),
            fi.frequent_prob.unwrap()
        );
    }

    // The planted groups must be among the maximal frequent itemsets.
    let planted = Itemset::from_items([0, 1, 2]);
    assert!(
        exact.get(&planted).is_some(),
        "planted overheating group was not recovered"
    );
    println!("\nplanted group {planted} recovered ✓");
}
