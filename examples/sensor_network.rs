//! Sensor-network monitoring — the paper's opening motivation: "due to the
//! inherent uncertainty of sensors, the collected data are often inaccurate".
//!
//! A field of sensors reports discrete events (high temperature, vibration,
//! voltage sag, …). Each reading carries a confidence derived from the
//! sensor's noise model, so telemetry is an uncertain transaction stream:
//! one transaction per time window, one `(event, confidence)` unit per
//! report. This example runs the full *streaming* pipeline: readings are
//! ingested into a sliding [`WindowedDatabase`], and an [`IncrementalMiner`]
//! keeps the probabilistic frequent itemsets of the last `CAPACITY` windows
//! fresh by re-judging only the itemsets each batch of arrivals/expiries
//! could have moved across the frequentness border — instead of re-mining
//! the whole window from scratch.
//!
//! The final refresh is checked bit-for-bit against a from-scratch batch
//! mine of the same window (the incremental contract), and the planted
//! co-occurrence groups must be recovered.
//!
//! Run with: `cargo run --release --example sensor_network`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use uncertain_fim::miners::common::{
    mine_level_wise_with_plan, ExactKernel, ExactMeasure, ExpectedSupport, IncrementalMiner,
};
use uncertain_fim::prelude::*;

/// Sliding window: the most recent `CAPACITY` time windows of telemetry.
const CAPACITY: usize = 2_048;
/// Event vocabulary (sensor report types).
const SENSORS: u32 = 24;
/// Arrivals per refresh: the monitor re-mines once per batch of windows.
const BATCH: usize = 256;
/// Stream length beyond the initial fill.
const STREAM: usize = 4_096;

/// One synthesized time window of telemetry. Three correlated event groups
/// are planted (e.g. overheating: {0: high-temp, 1: fan-stall, 2:
/// voltage-sag}); the mining should recover them despite per-reading noise.
fn reading(rng: &mut StdRng) -> Transaction {
    let groups: &[&[u32]] = &[&[0, 1, 2], &[7, 8], &[12, 13, 14]];
    let mut units: Vec<(u32, f64)> = Vec::new();
    // Each group fires as a unit in 30% of windows; readings carry
    // confidence 0.75–0.99 (sensor SNR).
    for g in groups {
        if rng.gen_bool(0.3) {
            for &event in *g {
                units.push((event, rng.gen_range(0.75..0.99)));
            }
        }
    }
    // Background noise: spurious low-confidence reports.
    for event in 0..SENSORS {
        if units.iter().all(|&(e, _)| e != event) && rng.gen_bool(0.05) {
            units.push((event, rng.gen_range(0.1..0.5)));
        }
    }
    Transaction::new(units).expect("valid units")
}

fn main() {
    // Sparse data (density ~0.1). 0.15 sits below the planted triple mass
    // (0.3 firing rate × ~0.66 three-reading confidence ≈ 0.2) with
    // headroom for sampling noise; Pr{sup ≥ msup} must clear 0.95.
    let params = MiningParams::new(0.15, 0.95).expect("valid parameters");
    // Exact frequent probability via divide-and-conquer + Chernoff screen —
    // the DCB configuration, as a pluggable measure over the window size.
    let measure = ExactMeasure::new(ExactKernel::DivideConquer, true, CAPACITY, &params);

    let mut rng = StdRng::seed_from_u64(7);
    let window = WindowedDatabase::new(CAPACITY, SENSORS);
    let mut miner = IncrementalMiner::new(window, measure, EngineKind::Vertical);

    // Phase 1 — fill the window, then mine it once from cold.
    for _ in 0..CAPACITY {
        miner.append(reading(&mut rng));
    }
    let t0 = Instant::now();
    miner.refresh();
    let cold = miner.result().stats.clone();
    println!(
        "cold start: {} windows, {} event types → {} frequent itemsets \
         ({} candidates evaluated, {:.1?})",
        CAPACITY,
        SENSORS,
        miner.result().len(),
        cold.candidates_evaluated,
        t0.elapsed()
    );

    // Phase 2 — slide: each batch expires the oldest windows, appends fresh
    // telemetry, and refreshes incrementally. The border tracker re-judges
    // only itemsets the batch could have moved across the threshold.
    let (mut evaluated, mut rejudged, mut skipped) = (0u64, 0u64, 0u64);
    let t1 = Instant::now();
    for _ in 0..STREAM / BATCH {
        miner.expire_oldest(BATCH);
        for _ in 0..BATCH {
            miner.append(reading(&mut rng));
        }
        let stats = &miner.refresh().stats;
        evaluated += stats.candidates_evaluated;
        rejudged += stats.border_rejudged;
        skipped += stats.border_skipped;
    }
    let elapsed = t1.elapsed();
    println!(
        "streamed  : {STREAM} windows in {} batches of {BATCH} → \
         {:.0} windows/sec sustained",
        STREAM / BATCH,
        STREAM as f64 / elapsed.as_secs_f64()
    );
    println!(
        "freshness : {evaluated} candidates re-evaluated across all refreshes \
         (cold mine: {}), border re-judged {rejudged} / reused {skipped}",
        cold.candidates_evaluated
    );

    // The incremental contract: the live result is bit-identical to mining
    // the current window from scratch.
    let batch = mine_level_wise_with_plan(
        &miner.window().snapshot(),
        measure,
        miner.engine_kind(),
        miner.shard_plan(),
    );
    assert_eq!(
        miner.result().itemsets,
        batch.itemsets,
        "incremental result diverged from the batch oracle"
    );
    println!("oracle    : incremental ≡ from-scratch batch mine ✓");

    println!("\nLive co-occurring event groups (maximal itemsets, exact Pr):");
    let mut maximal = uncertain_fim::miners::postprocess::maximal(miner.result());
    maximal.sort_by_key(|fi| std::cmp::Reverse(fi.itemset.len()));
    for fi in maximal.iter().take(8) {
        println!(
            "  {}  esup/N = {:.3}  Pr{{sup ≥ {}}} = {:.4}",
            fi.itemset,
            fi.expected_support / CAPACITY as f64,
            params.msup(CAPACITY),
            fi.frequent_prob.unwrap()
        );
    }

    // The planted groups must be among the live frequent itemsets.
    let planted = Itemset::from_items([0, 1, 2]);
    assert!(
        miner.result().get(&planted).is_some(),
        "planted overheating group was not recovered"
    );
    println!("\nplanted group {planted} recovered ✓");

    // Cheap-measure variant: the same telemetry stream monitored with
    // expected support + variance instead of the exact kernel. Judging a
    // candidate here is nearly free, so this regime only beats batch
    // re-mining because window steps point-patch the retained memos
    // (memo-preserving delta evaluation) — both throughput regimes are
    // reported so CI logs show the exact-kernel *and* the cheap-moment
    // windows/sec side by side.
    let cheap = ExpectedSupport::with_variance(0.15 * CAPACITY as f64);
    let mut rng = StdRng::seed_from_u64(7);
    let mut monitor = IncrementalMiner::new(
        WindowedDatabase::new(CAPACITY, SENSORS),
        cheap,
        EngineKind::Vertical,
    );
    for _ in 0..CAPACITY {
        monitor.append(reading(&mut rng));
    }
    monitor.refresh();
    let (mut patched, mut rebuilt) = (0u64, 0u64);
    let t2 = Instant::now();
    for _ in 0..STREAM / BATCH {
        monitor.expire_oldest(BATCH);
        for _ in 0..BATCH {
            monitor.append(reading(&mut rng));
        }
        let stats = &monitor.refresh().stats;
        patched += stats.memo_patched;
        rebuilt += stats.memo_rebuilt;
    }
    let cheap_elapsed = t2.elapsed();
    println!(
        "\ncheap measure (esup+var): {STREAM} windows → {:.0} windows/sec sustained \
         (memo nodes patched {patched}, rebuilt {rebuilt})",
        STREAM as f64 / cheap_elapsed.as_secs_f64()
    );
    let cheap_batch = mine_level_wise_with_plan(
        &monitor.window().snapshot(),
        cheap,
        monitor.engine_kind(),
        monitor.shard_plan(),
    );
    assert_eq!(
        monitor.result().itemsets,
        cheap_batch.itemsets,
        "cheap-measure incremental result diverged from the batch oracle"
    );
    println!("cheap measure (esup+var): incremental ≡ from-scratch batch mine ✓");
}
