//! A tour of all eight algorithms (plus the oracle) on one dataset — a
//! miniature of the paper's Table 10 comparison, printed live — followed by
//! the measure × traversal cells the paper never built.
//!
//! Run with: `cargo run --release --example algorithm_tour`
//! Optional args: `<dataset> <scale>`, e.g.
//! `cargo run --release --example algorithm_tour -- kosarak 0.02`

use uncertain_fim::core::traits::{MinerInfo, ProbabilisticMiner};
use uncertain_fim::core::{MeasureKind, TraversalKind};
use uncertain_fim::data::Benchmark;
use uncertain_fim::metrics::table::{fmt_secs, Table};
use uncertain_fim::metrics::time::measure;
use uncertain_fim::miners::{Algorithm, AlgorithmGroup, MatrixMiner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match args.first().map(String::as_str) {
        Some("connect") => Benchmark::Connect,
        Some("accident") => Benchmark::Accident,
        Some("kosarak") => Benchmark::Kosarak,
        Some("gazelle") | None => Benchmark::Gazelle,
        Some("t25") => Benchmark::T25I15D320k,
        Some(other) => {
            eprintln!("unknown dataset {other:?} (connect|accident|kosarak|gazelle|t25)");
            std::process::exit(2);
        }
    };
    let scale: f64 = args
        .get(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.05);

    let db = bench.generate(scale, 42);
    let d = bench.defaults();
    let stats = db.stats();
    println!(
        "dataset={} (analog)  N={}  items={}  avg_len={:.1}  density={:.4}",
        bench.name(),
        stats.num_transactions,
        stats.num_items,
        stats.avg_transaction_len,
        stats.density
    );
    println!(
        "defaults: Gaussian(mean={}, var={}), min_sup={}, pft={}\n",
        d.mean, d.variance, d.min_sup, d.pft
    );

    let mut table = Table::new(["algorithm", "group", "time", "#frequent", "max |X|"]);

    // Definition 2 miners at min_esup = min_sup.
    for algo in Algorithm::EXPECTED_SUPPORT {
        let miner = algo.expected_support_miner().unwrap();
        let (r, t) = measure(|| miner.mine_expected_ratio(&db, d.min_sup).unwrap());
        table.row([
            algo.name().to_string(),
            "expected-support".into(),
            fmt_secs(t.as_secs_f64()),
            r.len().to_string(),
            r.max_len().to_string(),
        ]);
    }

    // Definition 4 miners (exact + approximate) at (min_sup, pft).
    for algo in Algorithm::EXACT_PROBABILISTIC.into_iter().chain([
        Algorithm::PDUApriori,
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
    ]) {
        let miner = algo.probabilistic_miner().unwrap();
        let (r, t) = measure(|| miner.mine_probabilistic_raw(&db, d.min_sup, d.pft).unwrap());
        let group = match algo.group() {
            AlgorithmGroup::ExactProbabilistic => "exact probabilistic",
            AlgorithmGroup::ApproximateProbabilistic => "approximate",
            _ => "?",
        };
        table.row([
            algo.name().to_string(),
            group.into(),
            fmt_secs(t.as_secs_f64()),
            r.len().to_string(),
            r.max_len().to_string(),
        ]);
    }

    print!("{table}");
    println!(
        "\nExpect (paper Table 10): UApriori leads on dense data at high thresholds; \
         UH-Mine/NDUH-Mine lead on sparse data; UFP-growth trails; B-variants beat \
         NB-variants; approximate miners beat exact ones."
    );

    // Beyond Table 10: the matrix cells no paper algorithm occupies — the
    // same judgments, rehosted on the other traversal.
    println!("\nunnamed matrix cells (same measures, different traversals):");
    let mut extra = Table::new(["cell", "group", "time", "#frequent", "max |X|"]);
    for (measure, traversal) in [
        (MeasureKind::Poisson, TraversalKind::HyperStructure),
        (MeasureKind::Poisson, TraversalKind::TreeGrowth),
        (MeasureKind::Normal, TraversalKind::TreeGrowth),
        (MeasureKind::ExactDp, TraversalKind::HyperStructure),
        (MeasureKind::ExactDc, TraversalKind::HyperStructure),
    ] {
        assert!(Algorithm::from_cell(measure, traversal).is_none());
        let cell = MatrixMiner::new(measure, traversal);
        let (r, t) = measure_run(|| cell.mine_probabilistic_raw(&db, d.min_sup, d.pft).unwrap());
        extra.row([
            cell.name().to_string(),
            AlgorithmGroup::of_measure(measure).name().to_string(),
            fmt_secs(t),
            r.len().to_string(),
            r.max_len().to_string(),
        ]);
    }
    print!("{extra}");
}

/// [`measure`] with the duration already converted to seconds.
fn measure_run<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let (r, t) = measure(f);
    (r, t.as_secs_f64())
}
