//! Quickstart: both definitions of "frequent itemset over an uncertain
//! database" on the paper's own worked example (Table 1).
//!
//! Run with: `cargo run --release --example quickstart`

use uncertain_fim::prelude::*;

fn main() {
    // The paper's Table 1 database:
    //   T1: A(0.8) B(0.2) C(0.9) D(0.7) F(0.8)
    //   T2: A(0.8) B(0.7) C(0.9) E(0.5)
    //   T3: A(0.5) C(0.8) E(0.8) F(0.3)
    //   T4: B(0.5) D(0.5) F(0.7)
    // Built here by hand to show the API; the same database also ships as
    // `uncertain_fim::core::examples::paper_table1()`.
    let (a, b, c, d, e, f) = (0u32, 1, 2, 3, 4, 5);
    let db = UncertainDatabase::with_num_items(
        vec![
            Transaction::new([(a, 0.8), (b, 0.2), (c, 0.9), (d, 0.7), (f, 0.8)]).unwrap(),
            Transaction::new([(a, 0.8), (b, 0.7), (c, 0.9), (e, 0.5)]).unwrap(),
            Transaction::new([(a, 0.5), (c, 0.8), (e, 0.8), (f, 0.3)]).unwrap(),
            Transaction::new([(b, 0.5), (d, 0.5), (f, 0.7)]).unwrap(),
        ],
        6,
    );
    let names = ["A", "B", "C", "D", "E", "F"];
    let label = |itemset: &Itemset| -> String {
        itemset
            .items()
            .iter()
            .map(|&i| names[i as usize])
            .collect::<Vec<_>>()
            .join("")
    };

    // ── Definition 2: expected-support-based frequent itemsets ────────────
    // An itemset is frequent iff esup(X) = Σ_t Π_{x∈X} p_t(x) ≥ N·min_esup.
    println!("Expected-support mining (UApriori, min_esup = 0.5):");
    let result = UApriori::new()
        .mine_expected_ratio(&db, 0.5)
        .expect("valid parameters");
    for fi in &result.itemsets {
        println!(
            "  {{{}}}  esup = {:.1}",
            label(&fi.itemset),
            fi.expected_support
        );
    }
    assert_eq!(result.len(), 2); // {A}: 2.1 and {C}: 2.6 — the paper's Example 1

    // ── Definition 4: probabilistic frequent itemsets ──────────────────────
    // An itemset is frequent iff Pr{sup(X) ≥ ⌈N·min_sup⌉} > pft, with the
    // support's full Poisson-Binomial distribution evaluated exactly.
    println!("\nExact probabilistic mining (DCB, min_sup = 0.5, pft = 0.7):");
    let result = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, 0.5, 0.7)
        .expect("valid parameters");
    for fi in &result.itemsets {
        println!(
            "  {{{}}}  esup = {:.2}  Pr{{sup ≥ 2}} = {:.4}",
            label(&fi.itemset),
            fi.expected_support,
            fi.frequent_prob.expect("exact miner reports probabilities"),
        );
    }

    // ── The bridge: approximate probabilistic mining at esup cost ─────────
    println!("\nNormal-approximation mining (NDUH-Mine, same parameters):");
    let approx = NDUHMine::new()
        .mine_probabilistic_raw(&db, 0.5, 0.7)
        .expect("valid parameters");
    for fi in &approx.itemsets {
        println!(
            "  {{{}}}  esup = {:.2}  Var = {:.2}  Pr ≈ {:.4}",
            label(&fi.itemset),
            fi.expected_support,
            fi.variance.expect("computed alongside esup"),
            fi.frequent_prob.unwrap(),
        );
    }
    println!(
        "\n(4 transactions is far below CLT territory — see the sensor_network \
         example for the approximation at realistic scale.)"
    );
}
