//! Market-basket analysis over uncertain purchase data, demonstrating the
//! paper's central claim: **the two frequent-itemset definitions can be
//! unified when the database is large enough** (§1, §4.4).
//!
//! Scenario: a retailer models *purchase intent* from browsing telemetry —
//! each session is a basket of `(product, probability-of-purchase)` units.
//! We mine the same database under Definition 2 (expected support) and
//! Definition 4 (probabilistic, exact via DCB), then show how the
//! Normal-approximation bridge reproduces the exact probabilistic answer at
//! expected-support cost, with precision/recall → 1 as N grows.
//!
//! Run with: `cargo run --release --example market_basket`

use uncertain_fim::data::{assign_probabilities, Benchmark, ProbabilityModel};
use uncertain_fim::metrics::accuracy::precision_recall;
use uncertain_fim::prelude::*;

fn main() {
    // Gazelle is the paper's e-commerce clickstream benchmark; its analog
    // plays the browsing log, and a high-mean Gaussian models purchase
    // intent inferred from strong signals (cart adds, wishlists).
    let det = Benchmark::Gazelle.generate_deterministic(0.2, 2024);
    let (min_sup, pft) = (0.01, 0.9);

    println!(
        "sessions={}  products={}",
        det.num_transactions(),
        det.num_items()
    );
    println!("min_sup={min_sup}, pft={pft}\n");
    println!(
        "{:>8}  {:>6} {:>6} {:>9} {:>9}  {:>9}",
        "N", "|ER|", "|AR|", "precision", "recall", "esup-vs-ER"
    );

    // Grow the database: the CLT bridge tightens as N rises.
    for frac in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
        let n = ((det.num_transactions() as f64) * frac) as usize;
        let slice = det.truncated(n);
        let db = assign_probabilities(
            &slice,
            &ProbabilityModel::Gaussian {
                mean: 0.95,
                variance: 0.05,
            },
            99,
        );

        // Definition 4, exact (ER in the paper's Tables 8-9 notation).
        let exact = DcMiner::with_pruning()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .expect("valid parameters");

        // Definition 4, approximate (AR): NDUApriori.
        let approx = NDUApriori::new()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .expect("valid parameters");
        let acc = precision_recall(&approx, &exact);

        // Definition 2 at the same ratio: how far apart are the *worlds*?
        let esup_world = UApriori::new()
            .mine_expected_ratio(&db, min_sup)
            .expect("valid parameters");
        let esup_acc = precision_recall(&esup_world, &exact);

        println!(
            "{:>8}  {:>6} {:>6} {:>9.3} {:>9.3}  {:>9.3}",
            db.num_transactions(),
            exact.len(),
            approx.len(),
            acc.precision,
            acc.recall,
            esup_acc.f1(),
        );
    }

    println!(
        "\nReading: precision/recall of the Normal bridge against the exact \
         probabilistic result approach 1.0 as N grows (the paper's Tables 8-9), \
         and even the raw expected-support result converges to the probabilistic \
         one — the two definitions unify at scale."
    );

    // Show a few of the strongest associations at full size.
    let db = assign_probabilities(
        &det,
        &ProbabilityModel::Gaussian {
            mean: 0.95,
            variance: 0.05,
        },
        99,
    );
    let exact = DcMiner::with_pruning()
        .mine_probabilistic_raw(&db, min_sup, pft)
        .expect("valid parameters");
    let mut pairs: Vec<&FrequentItemset> = exact
        .itemsets
        .iter()
        .filter(|fi| fi.itemset.len() >= 2)
        .collect();
    pairs.sort_by(|a, b| b.expected_support.partial_cmp(&a.expected_support).unwrap());
    println!("\nstrongest product associations (|X| ≥ 2):");
    for fi in pairs.iter().take(5) {
        println!(
            "  {}  esup = {:.1}  Pr = {:.4}",
            fi.itemset,
            fi.expected_support,
            fi.frequent_prob.unwrap()
        );
    }
}
