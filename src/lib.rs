//! # uncertain-fim
//!
//! Facade crate for the workspace reproducing *Tong, Chen, Cheng, Yu:
//! "Mining Frequent Itemsets over Uncertain Databases", PVLDB 5(11), 2012*.
//!
//! Re-exports the five member crates under stable module names so that
//! downstream users (and this repo's examples and integration tests) need a
//! single dependency:
//!
//! * [`core`] — data model: [`core::UncertainDatabase`], [`core::Itemset`],
//!   miner traits, results;
//! * [`stats`] — Poisson-Binomial support distributions, FFT, Normal /
//!   Poisson approximations, Chernoff bounds;
//! * [`data`] — dataset generators (Connect/Accident/Kosarak/Gazelle analogs,
//!   IBM-Quest synthetic), probability assignment (Gaussian, Zipf), FIMI I/O;
//! * [`miners`] — the eight algorithms of the paper plus a brute-force
//!   oracle;
//! * [`metrics`] — measurement utilities (peak-memory tracking allocator,
//!   timers, precision/recall).
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_fim::prelude::*;
//!
//! // The paper's Table 1 micro-database.
//! let db = uncertain_fim::core::examples::paper_table1();
//!
//! // Definition 2: expected-support-based frequent itemsets.
//! let esup_result = UApriori::default()
//!     .mine_expected_ratio(&db, 0.5)
//!     .unwrap();
//! assert_eq!(esup_result.len(), 2); // {A} and {C} — Example 1
//!
//! // Definition 4: probabilistic frequent itemsets (exact, DC + Chernoff).
//! let prob_result = DcMiner::with_pruning()
//!     .mine_probabilistic_raw(&db, 0.5, 0.7)
//!     .unwrap();
//! assert!(prob_result.len() >= 1);
//! ```

pub use ufim_core as core;
pub use ufim_data as data;
pub use ufim_metrics as metrics;
pub use ufim_miners as miners;
pub use ufim_stats as stats;

/// One-stop imports for applications.
pub mod prelude {
    pub use ufim_core::prelude::*;
    pub use ufim_miners::prelude::*;
}
