//! # uncertain-fim
//!
//! Facade crate for the workspace reproducing *Tong, Chen, Cheng, Yu:
//! "Mining Frequent Itemsets over Uncertain Databases", PVLDB 5(11), 2012*.
//!
//! Re-exports the five member crates under stable module names so that
//! downstream users (and this repo's examples and integration tests) need a
//! single dependency:
//!
//! * [`core`] — data model: [`core::UncertainDatabase`], [`core::Itemset`],
//!   miner traits, results, plus the columnar layout
//!   ([`core::VerticalIndex`], [`core::ProbVector`]) and the
//!   [`core::EngineKind`] backend selector;
//! * [`stats`] — Poisson-Binomial support distributions, FFT, Normal /
//!   Poisson approximations, Chernoff bounds;
//! * [`data`] — dataset generators (Connect/Accident/Kosarak/Gazelle analogs,
//!   IBM-Quest synthetic), probability assignment (Gaussian, Zipf), FIMI I/O;
//! * [`miners`] — the eight algorithms of the paper plus a brute-force
//!   oracle;
//! * [`metrics`] — measurement utilities (peak-memory tracking allocator,
//!   timers, precision/recall);
//! * [`serve`] — the concurrent query server: resident datasets, the
//!   cross-query memo ([`serve::ResidentMemo`]), and the line-JSON
//!   protocol ([`serve::ServeCore`] in-process, [`serve::TcpServer`] over
//!   a socket).
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_fim::prelude::*;
//!
//! // The paper's Table 1 micro-database.
//! let db = uncertain_fim::core::examples::paper_table1();
//!
//! // Definition 2: expected-support-based frequent itemsets.
//! let esup_result = UApriori::default()
//!     .mine_expected_ratio(&db, 0.5)
//!     .unwrap();
//! assert_eq!(esup_result.len(), 2); // {A} and {C} — Example 1
//!
//! // Definition 4: probabilistic frequent itemsets (exact, DC + Chernoff).
//! let prob_result = DcMiner::with_pruning()
//!     .mine_probabilistic_raw(&db, 0.5, 0.7)
//!     .unwrap();
//! assert!(prob_result.len() >= 1);
//! ```
//!
//! ## The measure × traversal × engine matrix
//!
//! The paper's taxonomy is two-dimensional — a *frequentness measure*
//! (expected support, Poisson/Normal approximations, exact DP/DC) crossed
//! with a *traversal* (level-wise Apriori, depth-first UH-Struct, UFP-tree
//! growth). Every miner above is a named cell of that grid; `MatrixMiner`
//! runs **any** cell, including combinations the paper never built:
//!
//! ```
//! use uncertain_fim::core::{MeasureKind, TraversalKind};
//! use uncertain_fim::miners::MatrixMiner;
//! use uncertain_fim::prelude::*;
//!
//! let db = uncertain_fim::core::examples::paper_table1();
//!
//! // Exact dynamic programming judged on UH-Mine's depth-first walk —
//! // same answers as DPB, different exploration strategy.
//! let cell = MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::HyperStructure);
//! let novel = cell.mine_probabilistic_raw(&db, 0.5, 0.7).unwrap();
//! let dpb = DpMiner::with_pruning().mine_probabilistic_raw(&db, 0.5, 0.7).unwrap();
//! assert_eq!(novel.sorted_itemsets(), dpb.sorted_itemsets());
//!
//! // The one principled hole: UFP-tree nodes aggregate transactions, so
//! // exact measures (which need per-transaction probability vectors)
//! // cannot run on tree growth.
//! let hole = MatrixMiner::new(MeasureKind::ExactDp, TraversalKind::TreeGrowth);
//! assert!(hole.mine_probabilistic_raw(&db, 0.5, 0.7).is_err());
//! ```
//!
//! ## Support backends
//!
//! The Apriori-framework miners (UApriori, PDUApriori, NDUApriori and the
//! exact DP/DC family) compute per-candidate support statistics through a
//! pluggable engine selected by [`core::EngineKind`]:
//!
//! * `Horizontal` (default) — trie-guided scans over the transaction list,
//!   one pass per level (the paper's layout);
//! * `Vertical` — a columnar tid-list index built in one pass, after which
//!   each candidate costs one intersection of its prefix's memoized
//!   probability vector with the last item's postings (U-Eclat);
//! * `Diffset` — the dEclat analog of `Vertical`, optimized for peak
//!   memory: the prefix memo stores deltas (the tids each extension
//!   dropped) instead of whole vectors, trading some reconstruction time
//!   for a much smaller memo on dense data.
//!
//! All three are observationally identical; see
//! `tests/engine_equivalence.rs`.
//!
//! ```
//! use uncertain_fim::core::EngineKind;
//! use uncertain_fim::prelude::*;
//!
//! let db = uncertain_fim::core::examples::paper_table1();
//! let v = UApriori::with_engine(EngineKind::Vertical)
//!     .mine_expected_ratio(&db, 0.5)
//!     .unwrap();
//! assert_eq!(v.len(), 2); // same answer, one database pass total
//! assert_eq!(v.stats.scans, 1);
//!
//! // Probabilistic miners take the selector through their params:
//! let params = MiningParams::new(0.5, 0.7)
//!     .unwrap()
//!     .with_engine(EngineKind::Vertical);
//! assert!(!DcMiner::with_pruning().mine_probabilistic(&db, params).unwrap().is_empty());
//! ```

#![forbid(unsafe_code)]

pub use ufim_core as core;
pub use ufim_data as data;
pub use ufim_metrics as metrics;
pub use ufim_miners as miners;
pub use ufim_serve as serve;
pub use ufim_stats as stats;

/// One-stop imports for applications.
pub mod prelude {
    pub use ufim_core::prelude::*;
    pub use ufim_miners::prelude::*;
}
